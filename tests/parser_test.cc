// Tests for the query language lexer and parser (Figure 2 grammar,
// Definition 2 clauses) on the paper's queries Q1, Q2, Q3.

#include "query/parser.h"

#include "gtest/gtest.h"
#include "query/lexer.h"
#include "tests/test_util.h"
#include "workload/cluster.h"
#include "workload/linear_road.h"
#include "workload/stock.h"

namespace greta {
namespace {

TEST(LexerTest, TokenizesSymbolsAndNumbers) {
  auto tokens = Tokenize("SEQ(A+, B) WHERE x.y >= 1.5 != 'str'");
  ASSERT_TRUE(tokens.ok());
  const std::vector<Token>& t = tokens.value();
  EXPECT_TRUE(t[0].IsKeyword("seq"));
  EXPECT_TRUE(t[1].IsSymbol("("));
  EXPECT_TRUE(t[3].IsSymbol("+"));
  // >= is one token; <> normalizes to !=.
  bool found_ge = false;
  bool found_ne = false;
  for (const Token& tok : t) {
    if (tok.IsSymbol(">=")) found_ge = true;
    if (tok.IsSymbol("!=")) found_ne = true;
  }
  EXPECT_TRUE(found_ge);
  EXPECT_TRUE(found_ne);
  EXPECT_EQ(t.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, ReportsBadCharacters) {
  EXPECT_FALSE(Tokenize("A # B").ok());
  EXPECT_FALSE(Tokenize("'unterminated").ok());
}

TEST(ParserTest, ParsesQ1) {
  Catalog catalog;
  RegisterStockTypes(&catalog);
  auto spec = ParseQuery(
      "RETURN sector, COUNT(*) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 10 minutes SLIDE 10 seconds",
      &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const QuerySpec& q = spec.value();
  EXPECT_EQ(q.pattern->op(), PatternOp::kPlus);
  ASSERT_EQ(q.aggs.size(), 1u);
  EXPECT_EQ(q.aggs[0].kind, AggKind::kCountStar);
  EXPECT_EQ(q.equivalence, (std::vector<std::string>{"company", "sector"}));
  EXPECT_EQ(q.group_by, (std::vector<std::string>{"sector"}));
  EXPECT_EQ(q.window.within, 600);
  EXPECT_EQ(q.window.slide, 10);
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0]->op(), ExprOp::kGt);
}

TEST(ParserTest, ParsesQ2WithAliasesAndSum) {
  Catalog catalog;
  RegisterClusterTypes(&catalog);
  auto spec = ParseQuery(
      "RETURN mapper, SUM(M.cpu) "
      "PATTERN SEQ(Start S, Measurement M+, End E) "
      "WHERE [job, mapper] AND M.load < NEXT(M).load "
      "GROUP-BY mapper WITHIN 1 minute SLIDE 30 seconds",
      &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const QuerySpec& q = spec.value();
  EXPECT_EQ(q.pattern->op(), PatternOp::kSeq);
  EXPECT_EQ(q.pattern->children().size(), 3u);
  ASSERT_EQ(q.aggs.size(), 1u);
  EXPECT_EQ(q.aggs[0].kind, AggKind::kSum);
  EXPECT_EQ(q.aggs[0].type, catalog.FindType("Measurement"));
  EXPECT_EQ(q.aggs[0].attr,
            catalog.type(catalog.FindType("Measurement")).FindAttr("cpu"));
  EXPECT_EQ(q.window.within, 60);
  EXPECT_EQ(q.window.slide, 30);
}

TEST(ParserTest, ParsesQ3WithNegationAndTwoAggregates) {
  Catalog catalog;
  RegisterLinearRoadTypes(&catalog);
  auto spec = ParseQuery(
      "RETURN segment, COUNT(*), AVG(P.speed) "
      "PATTERN SEQ(NOT Accident A, Position P+) "
      "WHERE [P.vehicle, segment] AND P.speed > NEXT(P).speed "
      "GROUP-BY segment WITHIN 5 minutes SLIDE 1 minute",
      &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const QuerySpec& q = spec.value();
  ASSERT_EQ(q.aggs.size(), 2u);
  EXPECT_EQ(q.aggs[0].kind, AggKind::kCountStar);
  EXPECT_EQ(q.aggs[1].kind, AggKind::kAvg);
  EXPECT_EQ(q.pattern->children()[0]->op(), PatternOp::kNot);
  EXPECT_EQ(q.equivalence,
            (std::vector<std::string>{"vehicle", "segment"}));
  EXPECT_EQ(q.window.within, 300);
  EXPECT_EQ(q.window.slide, 60);
}

TEST(ParserTest, CountOfEventType) {
  auto catalog = testing::PaperCatalog();
  auto spec = ParseQuery("RETURN COUNT(A) PATTERN A+ WITHIN 10 SLIDE 10",
                         catalog.get());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().aggs[0].kind, AggKind::kCountType);
  EXPECT_EQ(spec.value().aggs[0].type, catalog->FindType("A"));
}

TEST(ParserTest, PostfixOperatorsAndParens) {
  auto catalog = testing::PaperCatalog();
  auto spec = ParseQuery(
      "RETURN COUNT(*) PATTERN (SEQ(A+, B))+", catalog.get());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().pattern->ToString(*catalog), "(SEQ((A)+, B))+");
  EXPECT_TRUE(spec.value().window.unbounded());

  auto star = ParseQuery("RETURN COUNT(*) PATTERN SEQ(A*, B?)", catalog.get());
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(star.value().pattern->child(0).op(), PatternOp::kStar);
  EXPECT_EQ(star.value().pattern->child(1).op(), PatternOp::kOpt);
}

TEST(ParserTest, DisjunctionAndConjunction) {
  auto catalog = testing::PaperCatalog();
  auto spec =
      ParseQuery("RETURN COUNT(*) PATTERN A+ | SEQ(C, D)", catalog.get());
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().pattern->op(), PatternOp::kOr);
  auto conj =
      ParseQuery("RETURN COUNT(*) PATTERN A+ & B+", catalog.get());
  ASSERT_TRUE(conj.ok());
  EXPECT_EQ(conj.value().pattern->op(), PatternOp::kAnd);
}

TEST(ParserTest, TumblingWindowWhenSlideOmitted) {
  auto catalog = testing::PaperCatalog();
  auto spec =
      ParseQuery("RETURN COUNT(*) PATTERN A+ WITHIN 30 seconds",
                 catalog.get());
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().window.within, 30);
  EXPECT_EQ(spec.value().window.slide, 30);
}

TEST(ParserTest, ErrorsAreDescriptive) {
  auto catalog = testing::PaperCatalog();
  // Unknown type.
  EXPECT_FALSE(ParseQuery("RETURN COUNT(*) PATTERN Zz+", catalog.get()).ok());
  // RETURN attribute not grouped.
  EXPECT_FALSE(
      ParseQuery("RETURN sector, COUNT(*) PATTERN A+", catalog.get()).ok());
  // Missing PATTERN.
  EXPECT_FALSE(ParseQuery("RETURN COUNT(*) WHERE A.attr > 1", catalog.get())
                   .ok());
  // Unknown attribute.
  EXPECT_FALSE(ParseQuery("RETURN COUNT(*) PATTERN A+ WHERE A.nope > 1",
                          catalog.get())
                   .ok());
  // Trailing garbage.
  EXPECT_FALSE(
      ParseQuery("RETURN COUNT(*) PATTERN A+ BANANA", catalog.get()).ok());
  // Zero-length window.
  EXPECT_FALSE(
      ParseQuery("RETURN COUNT(*) PATTERN A+ WITHIN 0 seconds", catalog.get())
          .ok());
}

TEST(ParserTest, ParsedQueryRunsEndToEnd) {
  // The parsed (SEQ(A+, B))+ must reproduce Figure 6(c)'s count of 43.
  auto catalog = testing::PaperCatalog();
  auto spec = ParseQuery("RETURN COUNT(*) PATTERN (SEQ(A+, B))+",
                         catalog.get());
  ASSERT_TRUE(spec.ok());
  auto engine = testing::MakeGreta(catalog.get(), std::move(spec).value());
  Stream stream = testing::Figure6Stream(catalog.get());
  EXPECT_EQ(testing::SingleCount(testing::RunEngine(engine.get(), stream)),
            "43");
}

}  // namespace
}  // namespace greta
