// Unit tests of the multi-query sharing subsystem (src/sharing/): template
// fingerprint normalization, workload clustering, the share/no-share cost
// decision, and the SharedWorkloadEngine result-routing plumbing.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/parser.h"
#include "sharing/shared_engine.h"
#include "sharing/sharing_planner.h"
#include "tests/test_util.h"
#include "workload/stock.h"

namespace greta {
namespace {

using sharing::PlanSharing;
using sharing::SharedEngineOptions;
using sharing::SharedWorkloadEngine;
using sharing::SharingOptions;
using sharing::SharingPlan;
using sharing::TemplateMerger;

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

std::string Fingerprint(const std::string& text, Catalog* catalog) {
  QuerySpec spec = Parse(text, catalog);
  auto fp = TemplateMerger::Fingerprint(spec, *catalog);
  EXPECT_TRUE(fp.ok()) << fp.status().ToString();
  return fp.ok() ? fp.value() : "";
}

std::unique_ptr<Catalog> StockCatalog() {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  return catalog;
}

TEST(TemplateMergerTest, AggregatesDoNotAffectFingerprint) {
  auto catalog = StockCatalog();
  std::string a = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company]", catalog.get());
  std::string b = Fingerprint(
      "RETURN SUM(S.price) PATTERN Stock S+ WHERE [company]", catalog.get());
  EXPECT_EQ(a, b);
}

TEST(TemplateMergerTest, AliasRenamingMerges) {
  auto catalog = StockCatalog();
  std::string a = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND "
      "S.price > NEXT(S).price",
      catalog.get());
  std::string b = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock T+ WHERE [company] AND "
      "T.price > NEXT(T).price",
      catalog.get());
  EXPECT_EQ(a, b);
}

TEST(TemplateMergerTest, PredicateOrderIsNormalized) {
  auto catalog = StockCatalog();
  std::string a = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > 10 AND "
      "S.volume > 5",
      catalog.get());
  std::string b = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE S.volume > 5 AND "
      "S.price > 10",
      catalog.get());
  EXPECT_EQ(a, b);
}

TEST(TemplateMergerTest, TumblingEqualsSlidingWithEqualSlide) {
  auto catalog = StockCatalog();
  std::string a = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 seconds", catalog.get());
  std::string b = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 seconds SLIDE 10 seconds",
      catalog.get());
  EXPECT_EQ(a, b);
}

TEST(TemplateMergerTest, DifferencesKeepQueriesApart) {
  auto catalog = StockCatalog();
  std::string base = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] "
      "GROUP-BY sector WITHIN 10 seconds",
      catalog.get());
  // Different window.
  EXPECT_NE(base, Fingerprint(
                      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] "
                      "GROUP-BY sector WITHIN 20 seconds",
                      catalog.get()));
  // Different slide.
  EXPECT_NE(base, Fingerprint(
                      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] "
                      "GROUP-BY sector WITHIN 10 seconds SLIDE 2 seconds",
                      catalog.get()));
  // Different predicate.
  EXPECT_NE(base, Fingerprint(
                      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND "
                      "S.price > 0 GROUP-BY sector WITHIN 10 seconds",
                      catalog.get()));
  // Different grouping.
  EXPECT_NE(base, Fingerprint(
                      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] "
                      "WITHIN 10 seconds",
                      catalog.get()));
  // Different pattern.
  EXPECT_NE(base, Fingerprint(
                      "RETURN COUNT(*) PATTERN SEQ(Stock S+, Halt H) "
                      "WHERE [company] GROUP-BY sector WITHIN 10 seconds",
                      catalog.get()));
}

TEST(TemplateMergerTest, NegationPatternsFingerprintStructurally) {
  auto catalog = StockCatalog();
  std::string a = Fingerprint(
      "RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+)", catalog.get());
  std::string b = Fingerprint(
      "RETURN SUM(S.price) PATTERN SEQ(NOT Halt X, Stock S+)",
      catalog.get());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Fingerprint("RETURN COUNT(*) PATTERN Stock S+",
                           catalog.get()));
}

TEST(SharingPlannerTest, ClustersByFingerprintAndDecidesSharing) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 10 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN SUM(S.price) PATTERN Stock S+ WHERE [company] "
      "WITHIN 10 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN MIN(S.price) PATTERN Stock S+ WHERE [company] "
      "WITHIN 10 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(Stock S, Halt H) WITHIN 10 seconds",
      catalog.get()));

  auto plan = PlanSharing(workload, *catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan.value().clusters.size(), 2u);
  EXPECT_EQ(plan.value().num_queries, 4u);

  const sharing::QueryCluster& big = plan.value().clusters[0];
  EXPECT_EQ(big.query_ids, (std::vector<size_t>{0, 1, 2}));
  EXPECT_TRUE(big.shared);
  EXPECT_LT(big.shared_cost, big.independent_cost);

  const sharing::QueryCluster& lone = plan.value().clusters[1];
  EXPECT_EQ(lone.query_ids, (std::vector<size_t>{3}));
  EXPECT_FALSE(lone.shared);

  EXPECT_EQ(plan.value().num_shared_clusters(), 1u);
  EXPECT_NE(plan.value().ToString().find("SHARED"), std::string::npos);
}

TEST(SharingPlannerTest, OptionsDisableSharing) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN COUNT(*) PATTERN Stock S+",
                           catalog.get()));
  workload.push_back(Parse("RETURN COUNT(Stock) PATTERN Stock S+",
                           catalog.get()));

  SharingOptions off;
  off.enable_sharing = false;
  auto plan = PlanSharing(workload, *catalog, off);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().num_shared_clusters(), 0u);

  SharingOptions high_min;
  high_min.min_cluster_size = 3;
  plan = PlanSharing(workload, *catalog, high_min);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().num_shared_clusters(), 0u);
}

TEST(SharedWorkloadEngineTest, RoutesResultsPerQuery) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN COUNT(*) PATTERN Stock S+",
                           catalog.get()));
  workload.push_back(Parse("RETURN SUM(S.price) PATTERN Stock S+",
                           catalog.get()));

  auto engine = SharedWorkloadEngine::Create(catalog.get(), workload);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value()->num_queries(), 2u);
  EXPECT_EQ(engine.value()->sharing_plan().num_shared_clusters(), 1u);
  EXPECT_EQ(engine.value()->name(), "SHARED");

  Stream stream;
  for (Ts t = 1; t <= 3; ++t) {
    stream.Append(EventBuilder(catalog.get(), "Stock", t)
                      .Set("company", int64_t{1})
                      .Set("sector", int64_t{1})
                      .Set("price", static_cast<double>(t))
                      .Set("volume", int64_t{10})
                      .Set("kind", int64_t{0})
                      .Set("tx", int64_t{0})
                      .Build());
  }
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(engine.value()->Process(e).ok());
  }
  ASSERT_TRUE(engine.value()->Flush().ok());

  // 3 events, skip-till-any-match S+: 7 trends.
  std::vector<ResultRow> q0 = engine.value()->TakeResults(0);
  ASSERT_EQ(q0.size(), 1u);
  EXPECT_EQ(q0[0].aggs.count.ToDecimal(), "7");

  // SUM over the same 7 trends: prices 1,2,3; trends {1},{2},{3},{1,2},
  // {1,3},{2,3},{1,2,3} -> per-trend sums 1+2+3+3+4+5+6 = 24.
  std::vector<ResultRow> q1 = engine.value()->TakeResults(1);
  ASSERT_EQ(q1.size(), 1u);
  EXPECT_EQ(q1[0].aggs.sum, 24.0);
  EXPECT_TRUE(engine.value()->agg_plan_for(1).need_sum);
  EXPECT_FALSE(engine.value()->agg_plan_for(0).need_sum);

  EXPECT_EQ(engine.value()->stats().events_processed, 3u);
  // One merged graph: 3 stored vertices, not 6.
  EXPECT_EQ(engine.value()->stats().vertices_stored, 3u);
}

TEST(SharedWorkloadEngineTest, MultiQueryEngineDrainsAllSlotsViaInterface) {
  // GretaEngine::TakeResults() (the EngineInterface entry point) must drain
  // every query slot of a CreateMulti runtime, not just slot 0.
  auto catalog = StockCatalog();
  QuerySpec q0 = Parse("RETURN COUNT(*) PATTERN Stock S+", catalog.get());
  QuerySpec q1 = Parse("RETURN SUM(S.price) PATTERN Stock S+",
                       catalog.get());
  auto engine = GretaEngine::CreateMulti(catalog.get(), {&q0, &q1});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value()->num_queries(), 2u);

  Event e = EventBuilder(catalog.get(), "Stock", 1)
                .Set("company", int64_t{1})
                .Set("sector", int64_t{1})
                .Set("price", 5.0)
                .Set("volume", int64_t{1})
                .Set("kind", int64_t{0})
                .Set("tx", int64_t{0})
                .Build();
  ASSERT_TRUE(engine.value()->Process(e).ok());
  ASSERT_TRUE(engine.value()->Flush().ok());
  std::vector<ResultRow> all = engine.value()->TakeResults();
  ASSERT_EQ(all.size(), 2u);  // one row per query slot
  EXPECT_EQ(all[0].aggs.count.ToDecimal(), "1");
  EXPECT_EQ(all[1].aggs.sum, 5.0);
  EXPECT_TRUE(engine.value()->TakeResults().empty());  // drained
}

TEST(SharedWorkloadEngineTest, TakeResultsConcatenatesAllQueries) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN COUNT(*) PATTERN Stock S+",
                           catalog.get()));
  workload.push_back(Parse("RETURN COUNT(*) PATTERN Stock S+ "
                           "WHERE S.price > 1000",
                           catalog.get()));

  auto engine = SharedWorkloadEngine::Create(catalog.get(), workload);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Event e = EventBuilder(catalog.get(), "Stock", 1)
                .Set("company", int64_t{1})
                .Set("sector", int64_t{1})
                .Set("price", 5.0)
                .Set("volume", int64_t{1})
                .Set("kind", int64_t{0})
                .Set("tx", int64_t{0})
                .Build();
  ASSERT_TRUE(engine.value()->Process(e).ok());
  ASSERT_TRUE(engine.value()->Flush().ok());
  // Query 0 matches the single event, query 1's predicate rejects it.
  std::vector<ResultRow> all = engine.value()->TakeResults();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].aggs.count.ToDecimal(), "1");
}

}  // namespace
}  // namespace greta
