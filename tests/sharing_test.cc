// Unit tests of the multi-query sharing subsystem (src/sharing/): template
// fingerprint normalization, workload clustering, the share/no-share cost
// decision, and the SharedWorkloadEngine result-routing plumbing.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/parser.h"
#include "sharing/shared_engine.h"
#include "sharing/sharing_planner.h"
#include "tests/test_util.h"
#include "workload/stock.h"

namespace greta {
namespace {

using sharing::PlanSharing;
using sharing::SharedEngineOptions;
using sharing::SharedWorkloadEngine;
using sharing::SharingOptions;
using sharing::SharingPlan;
using sharing::TemplateMerger;

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

std::string Fingerprint(const std::string& text, Catalog* catalog) {
  QuerySpec spec = Parse(text, catalog);
  auto fp = TemplateMerger::Fingerprint(spec, *catalog);
  EXPECT_TRUE(fp.ok()) << fp.status().ToString();
  return fp.ok() ? fp.value() : "";
}

std::unique_ptr<Catalog> StockCatalog() {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  return catalog;
}

TEST(TemplateMergerTest, AggregatesDoNotAffectFingerprint) {
  auto catalog = StockCatalog();
  std::string a = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company]", catalog.get());
  std::string b = Fingerprint(
      "RETURN SUM(S.price) PATTERN Stock S+ WHERE [company]", catalog.get());
  EXPECT_EQ(a, b);
}

TEST(TemplateMergerTest, AliasRenamingMerges) {
  auto catalog = StockCatalog();
  std::string a = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND "
      "S.price > NEXT(S).price",
      catalog.get());
  std::string b = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock T+ WHERE [company] AND "
      "T.price > NEXT(T).price",
      catalog.get());
  EXPECT_EQ(a, b);
}

TEST(TemplateMergerTest, PredicateOrderIsNormalized) {
  auto catalog = StockCatalog();
  std::string a = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > 10 AND "
      "S.volume > 5",
      catalog.get());
  std::string b = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE S.volume > 5 AND "
      "S.price > 10",
      catalog.get());
  EXPECT_EQ(a, b);
}

TEST(TemplateMergerTest, TumblingEqualsSlidingWithEqualSlide) {
  auto catalog = StockCatalog();
  std::string a = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 seconds", catalog.get());
  std::string b = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 seconds SLIDE 10 seconds",
      catalog.get());
  EXPECT_EQ(a, b);
}

TEST(TemplateMergerTest, DifferencesKeepQueriesApart) {
  auto catalog = StockCatalog();
  std::string base = Fingerprint(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] "
      "GROUP-BY sector WITHIN 10 seconds",
      catalog.get());
  // Different window.
  EXPECT_NE(base, Fingerprint(
                      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] "
                      "GROUP-BY sector WITHIN 20 seconds",
                      catalog.get()));
  // Different slide.
  EXPECT_NE(base, Fingerprint(
                      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] "
                      "GROUP-BY sector WITHIN 10 seconds SLIDE 2 seconds",
                      catalog.get()));
  // Different predicate.
  EXPECT_NE(base, Fingerprint(
                      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] AND "
                      "S.price > 0 GROUP-BY sector WITHIN 10 seconds",
                      catalog.get()));
  // Different grouping.
  EXPECT_NE(base, Fingerprint(
                      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] "
                      "WITHIN 10 seconds",
                      catalog.get()));
  // Different pattern.
  EXPECT_NE(base, Fingerprint(
                      "RETURN COUNT(*) PATTERN SEQ(Stock S+, Halt H) "
                      "WHERE [company] GROUP-BY sector WITHIN 10 seconds",
                      catalog.get()));
}

TEST(TemplateMergerTest, NegationPatternsFingerprintStructurally) {
  auto catalog = StockCatalog();
  std::string a = Fingerprint(
      "RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+)", catalog.get());
  std::string b = Fingerprint(
      "RETURN SUM(S.price) PATTERN SEQ(NOT Halt X, Stock S+)",
      catalog.get());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, Fingerprint("RETURN COUNT(*) PATTERN Stock S+",
                           catalog.get()));
}

TEST(SharingPlannerTest, ClustersByFingerprintAndDecidesSharing) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 10 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN SUM(S.price) PATTERN Stock S+ WHERE [company] "
      "WITHIN 10 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN MIN(S.price) PATTERN Stock S+ WHERE [company] "
      "WITHIN 10 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(Stock S, Halt H) WITHIN 10 seconds",
      catalog.get()));

  auto plan = PlanSharing(workload, *catalog);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan.value().clusters.size(), 2u);
  EXPECT_EQ(plan.value().num_queries, 4u);

  const sharing::QueryCluster& big = plan.value().clusters[0];
  EXPECT_EQ(big.query_ids, (std::vector<size_t>{0, 1, 2}));
  EXPECT_TRUE(big.shared);
  EXPECT_LT(big.shared_cost, big.independent_cost);

  const sharing::QueryCluster& lone = plan.value().clusters[1];
  EXPECT_EQ(lone.query_ids, (std::vector<size_t>{3}));
  EXPECT_FALSE(lone.shared);

  EXPECT_EQ(plan.value().num_shared_clusters(), 1u);
  EXPECT_NE(plan.value().ToString().find("SHARED"), std::string::npos);
}

TEST(SharingPlannerTest, OptionsDisableSharing) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN COUNT(*) PATTERN Stock S+",
                           catalog.get()));
  workload.push_back(Parse("RETURN COUNT(Stock) PATTERN Stock S+",
                           catalog.get()));

  SharingOptions off;
  off.enable_sharing = false;
  auto plan = PlanSharing(workload, *catalog, off);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().num_shared_clusters(), 0u);

  SharingOptions high_min;
  high_min.min_cluster_size = 3;
  plan = PlanSharing(workload, *catalog, high_min);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().num_shared_clusters(), 0u);
}

TEST(SharedWorkloadEngineTest, RoutesResultsPerQuery) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN COUNT(*) PATTERN Stock S+",
                           catalog.get()));
  workload.push_back(Parse("RETURN SUM(S.price) PATTERN Stock S+",
                           catalog.get()));

  auto engine = SharedWorkloadEngine::Create(catalog.get(), workload);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value()->num_queries(), 2u);
  EXPECT_EQ(engine.value()->sharing_plan().num_shared_clusters(), 1u);
  EXPECT_EQ(engine.value()->name(), "SHARED");

  Stream stream;
  for (Ts t = 1; t <= 3; ++t) {
    stream.Append(EventBuilder(catalog.get(), "Stock", t)
                      .Set("company", int64_t{1})
                      .Set("sector", int64_t{1})
                      .Set("price", static_cast<double>(t))
                      .Set("volume", int64_t{10})
                      .Set("kind", int64_t{0})
                      .Set("tx", int64_t{0})
                      .Build());
  }
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(engine.value()->Process(e).ok());
  }
  ASSERT_TRUE(engine.value()->Flush().ok());

  // 3 events, skip-till-any-match S+: 7 trends.
  std::vector<ResultRow> q0 = engine.value()->TakeResults(0);
  ASSERT_EQ(q0.size(), 1u);
  EXPECT_EQ(q0[0].aggs.count.ToDecimal(), "7");

  // SUM over the same 7 trends: prices 1,2,3; trends {1},{2},{3},{1,2},
  // {1,3},{2,3},{1,2,3} -> per-trend sums 1+2+3+3+4+5+6 = 24.
  std::vector<ResultRow> q1 = engine.value()->TakeResults(1);
  ASSERT_EQ(q1.size(), 1u);
  EXPECT_EQ(q1[0].aggs.sum, 24.0);
  EXPECT_TRUE(engine.value()->agg_plan_for(1).need_sum);
  EXPECT_FALSE(engine.value()->agg_plan_for(0).need_sum);

  EXPECT_EQ(engine.value()->stats().events_processed, 3u);
  // One merged graph: 3 stored vertices, not 6.
  EXPECT_EQ(engine.value()->stats().vertices_stored, 3u);
}

TEST(SharedWorkloadEngineTest, MultiQueryEngineDrainsAllSlotsViaInterface) {
  // GretaEngine::TakeResults() (the EngineInterface entry point) must drain
  // every query slot of a CreateMulti runtime, not just slot 0.
  auto catalog = StockCatalog();
  QuerySpec q0 = Parse("RETURN COUNT(*) PATTERN Stock S+", catalog.get());
  QuerySpec q1 = Parse("RETURN SUM(S.price) PATTERN Stock S+",
                       catalog.get());
  auto engine = GretaEngine::CreateMulti(catalog.get(), {&q0, &q1});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_EQ(engine.value()->num_queries(), 2u);

  Event e = EventBuilder(catalog.get(), "Stock", 1)
                .Set("company", int64_t{1})
                .Set("sector", int64_t{1})
                .Set("price", 5.0)
                .Set("volume", int64_t{1})
                .Set("kind", int64_t{0})
                .Set("tx", int64_t{0})
                .Build();
  ASSERT_TRUE(engine.value()->Process(e).ok());
  ASSERT_TRUE(engine.value()->Flush().ok());
  std::vector<ResultRow> all = engine.value()->TakeResults();
  ASSERT_EQ(all.size(), 2u);  // one row per query slot
  EXPECT_EQ(all[0].aggs.count.ToDecimal(), "1");
  EXPECT_EQ(all[1].aggs.sum, 5.0);
  EXPECT_TRUE(engine.value()->TakeResults().empty());  // drained
}

TEST(SharedWorkloadEngineTest, TakeResultsConcatenatesAllQueries) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN COUNT(*) PATTERN Stock S+",
                           catalog.get()));
  workload.push_back(Parse("RETURN COUNT(*) PATTERN Stock S+ "
                           "WHERE S.price > 1000",
                           catalog.get()));

  auto engine = SharedWorkloadEngine::Create(catalog.get(), workload);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  Event e = EventBuilder(catalog.get(), "Stock", 1)
                .Set("company", int64_t{1})
                .Set("sector", int64_t{1})
                .Set("price", 5.0)
                .Set("volume", int64_t{1})
                .Set("kind", int64_t{0})
                .Set("tx", int64_t{0})
                .Build();
  ASSERT_TRUE(engine.value()->Process(e).ok());
  ASSERT_TRUE(engine.value()->Flush().ok());
  // Query 0 matches the single event, query 1's predicate rejects it.
  std::vector<ResultRow> all = engine.value()->TakeResults();
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].aggs.count.ToDecimal(), "1");
}

TEST(SharedWorkloadEngineTest, CallbacksDeliverEveryQuerySlot) {
  // Regression: EmitWindow used to fire the push callback for query slot 0
  // only, so streaming consumers of queries 1..n-1 silently got nothing.
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN COUNT(*) PATTERN Stock S+",
                           catalog.get()));
  workload.push_back(Parse("RETURN SUM(S.price) PATTERN Stock S+",
                           catalog.get()));
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(Stock S, Halt H) WITHIN 10 seconds",
      catalog.get()));

  auto engine = SharedWorkloadEngine::Create(catalog.get(), workload);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<std::vector<ResultRow>> pushed(workload.size());
  engine.value()->set_result_callback(
      [&](size_t query_id, const ResultRow& row) {
        ASSERT_LT(query_id, pushed.size());
        pushed[query_id].push_back(row);
      });

  Stream stream;
  for (Ts t = 1; t <= 3; ++t) {
    stream.Append(EventBuilder(catalog.get(), "Stock", t)
                      .Set("company", int64_t{1})
                      .Set("sector", int64_t{1})
                      .Set("price", static_cast<double>(t))
                      .Set("volume", int64_t{10})
                      .Set("kind", int64_t{0})
                      .Set("tx", int64_t{0})
                      .Build());
  }
  stream.Append(EventBuilder(catalog.get(), "Halt", 4)
                    .Set("company", int64_t{1})
                    .Set("sector", int64_t{1})
                    .Build());
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(engine.value()->Process(e).ok());
  }
  ASSERT_TRUE(engine.value()->Flush().ok());

  // Pushed rows match the polled rows of EVERY query, including slot 1 of
  // the shared runtime and the dedicated unit.
  for (size_t q = 0; q < workload.size(); ++q) {
    std::vector<ResultRow> polled = engine.value()->TakeResults(q);
    ASSERT_EQ(pushed[q].size(), polled.size()) << "query " << q;
  }
  ASSERT_EQ(pushed[0].size(), 1u);
  EXPECT_EQ(pushed[0][0].aggs.count.ToDecimal(), "7");
  ASSERT_EQ(pushed[1].size(), 1u);
  EXPECT_EQ(pushed[1][0].aggs.sum, 24.0);
  ASSERT_EQ(pushed[2].size(), 1u);
  EXPECT_EQ(pushed[2][0].aggs.count.ToDecimal(), "3");
}

TEST(SharedWorkloadEngineTest, PerSlotCallbacksOnMultiQueryEngine) {
  auto catalog = StockCatalog();
  QuerySpec q0 = Parse("RETURN COUNT(*) PATTERN Stock S+", catalog.get());
  QuerySpec q1 = Parse("RETURN SUM(S.price) PATTERN Stock S+",
                       catalog.get());
  auto engine = GretaEngine::CreateMulti(catalog.get(), {&q0, &q1});
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  int slot0 = 0;
  int slot1 = 0;
  engine.value()->set_result_callback([&](const ResultRow&) { ++slot0; });
  engine.value()->set_result_callback(1,
                                      [&](const ResultRow&) { ++slot1; });
  Event e = EventBuilder(catalog.get(), "Stock", 1)
                .Set("company", int64_t{1})
                .Set("sector", int64_t{1})
                .Set("price", 5.0)
                .Set("volume", int64_t{1})
                .Set("kind", int64_t{0})
                .Set("tx", int64_t{0})
                .Build();
  ASSERT_TRUE(engine.value()->Process(e).ok());
  ASSERT_TRUE(engine.value()->Flush().ok());
  EXPECT_EQ(slot0, 1);
  EXPECT_EQ(slot1, 1);
}

TEST(SharedWorkloadEngineTest, PeakMemoryIsPointInTimeNotSumOfPeaks) {
  // Regression: stats() used to sum per-unit peak_bytes, adding maxima
  // reached at different times. Build a workload whose units peak apart:
  // query 0's small-window graph fills up early and is purged; query 1's
  // unbounded graph grows late.
  auto catalog = testing::PaperCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse("RETURN COUNT(*) PATTERN A+ WITHIN 2 seconds",
                           catalog.get()));
  workload.push_back(Parse("RETURN COUNT(*) PATTERN B+", catalog.get()));

  Stream stream;
  auto add = [&](const char* type, Ts time) {
    stream.Append(EventBuilder(catalog.get(), type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  };
  for (int i = 0; i < 60; ++i) add("A", 1);   // early burst, expires fast
  for (Ts t = 10; t < 40; ++t) add("B", t);   // late steady growth

  auto shared = SharedWorkloadEngine::Create(catalog.get(), workload);
  ASSERT_TRUE(shared.ok()) << shared.status().ToString();
  // Track per-unit peaks by also running each query alone.
  size_t independent_peak_sum = 0;
  for (const QuerySpec& spec : workload) {
    auto engine = GretaEngine::Create(catalog.get(), spec.Clone());
    ASSERT_TRUE(engine.ok());
    testing::RunEngine(engine.value().get(), stream);
    independent_peak_sum += engine.value()->stats().peak_bytes;
  }
  testing::RunEngine(shared.value().get(), stream);

  size_t workload_peak = shared.value()->stats().peak_bytes;
  EXPECT_GT(workload_peak, 0u);
  // The true point-in-time peak is strictly below the sum of unit peaks
  // (query 0's burst is long gone when query 1 peaks) and matches the
  // shared tracker.
  EXPECT_LT(workload_peak, independent_peak_sum);
  EXPECT_EQ(workload_peak, shared.value()->memory().peak_bytes());
  // stats() is repeatable (no reset-then-accumulate visible state).
  EXPECT_EQ(shared.value()->stats().peak_bytes, workload_peak);
}

TEST(SharingPlannerTest, CostModelCountsPredicates) {
  // Regression: EstimateCosts ignored WHERE predicates; clusters with more
  // predicates must now estimate strictly more work on both sides.
  auto catalog = StockCatalog();
  auto cost_of = [&](const std::string& where) {
    std::vector<QuerySpec> workload;
    workload.push_back(Parse(
        "RETURN COUNT(*) PATTERN Stock S+" + where + " WITHIN 10 seconds",
        catalog.get()));
    workload.push_back(Parse(
        "RETURN SUM(S.price) PATTERN Stock S+" + where +
            " WITHIN 10 seconds",
        catalog.get()));
    auto plan = PlanSharing(workload, *catalog.get());
    EXPECT_TRUE(plan.ok());
    return plan.value().clusters[0];
  };
  sharing::QueryCluster bare = cost_of("");
  sharing::QueryCluster one = cost_of(" WHERE S.price > 10");
  sharing::QueryCluster two = cost_of(" WHERE S.price > 10 AND S.volume > 5");
  EXPECT_LT(bare.shared_cost, one.shared_cost);
  EXPECT_LT(one.shared_cost, two.shared_cost);
  EXPECT_LT(bare.independent_cost, one.independent_cost);
  EXPECT_LT(one.independent_cost, two.independent_cost);
  EXPECT_LT(two.shared_cost, two.independent_cost);
}

TEST(SharingPlannerTest, CostModelCountsWindowOverlap) {
  // Regression: EstimateCosts ignored MaxWindowsPerEvent; high-overlap
  // windows (small slide) touch more per-window cells per event and must
  // estimate strictly more work.
  auto catalog = StockCatalog();
  auto cost_of = [&](const std::string& window) {
    std::vector<QuerySpec> workload;
    workload.push_back(Parse(
        "RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 seconds SLIDE " + window,
        catalog.get()));
    workload.push_back(Parse(
        "RETURN SUM(S.price) PATTERN Stock S+ WITHIN 10 seconds SLIDE " +
            window,
        catalog.get()));
    auto plan = PlanSharing(workload, *catalog.get());
    EXPECT_TRUE(plan.ok());
    return plan.value().clusters[0];
  };
  sharing::QueryCluster tumbling = cost_of("10 seconds");
  sharing::QueryCluster overlap2 = cost_of("5 seconds");
  sharing::QueryCluster overlap10 = cost_of("1 seconds");
  EXPECT_LT(tumbling.shared_cost, overlap2.shared_cost);
  EXPECT_LT(overlap2.shared_cost, overlap10.shared_cost);
  EXPECT_LT(tumbling.independent_cost, overlap2.independent_cost);
  EXPECT_LT(overlap2.independent_cost, overlap10.independent_cost);
  EXPECT_LT(overlap10.shared_cost, overlap10.independent_cost);
}

TEST(SharingPlannerTest, WeightsAreExposedInOptions) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > 10 "
      "WITHIN 10 seconds SLIDE 2 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN SUM(S.price) PATTERN Stock S+ WHERE S.price > 10 "
      "WITHIN 10 seconds SLIDE 2 seconds",
      catalog.get()));
  SharingOptions cheap;
  cheap.predicate_weight = 0.0;
  cheap.window_overlap_weight = 0.0;
  SharingOptions costly;
  costly.predicate_weight = 10.0;
  costly.window_overlap_weight = 2.0;
  auto a = PlanSharing(workload, *catalog.get(), cheap);
  auto b = PlanSharing(workload, *catalog.get(), costly);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT(a.value().clusters[0].independent_cost,
            b.value().clusters[0].independent_cost);
}

}  // namespace
}  // namespace greta
