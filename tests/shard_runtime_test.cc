// Determinism of the sharded parallel runtime (src/runtime/): for every
// shard count, the merged result rows must be identical to single-threaded
// execution — bit-identical counts/min/max (integer and comparison merges
// are order-independent), tolerance-checked SUM/AVG (floating-point
// summation order over partitions differs) — across seeds, out-of-order
// input resequenced by K-slack, and shared / partial / independent
// workloads.

#include <algorithm>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/kslack.h"
#include "gtest/gtest.h"
#include "query/parser.h"
#include "runtime/sharded_runtime.h"
#include "tests/test_util.h"
#include "workload/linear_road.h"
#include "workload/stock.h"

namespace greta {
namespace {

using runtime::ShardRouter;
using runtime::ShardedOptions;
using runtime::ShardedRuntime;

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

std::string Q1Text(double factor, Ts within, Ts slide,
                   const std::string& aggs = "COUNT(*)") {
  return "RETURN sector, " + aggs +
         " PATTERN Stock S+ WHERE [company, sector] AND S.price * " +
         std::to_string(factor) +
         " > NEXT(S).price GROUP-BY sector WITHIN " + std::to_string(within) +
         " seconds SLIDE " + std::to_string(slide) + " seconds";
}

Stream MakeStockStream(Catalog* catalog, uint64_t seed, int rate = 50,
                       Ts duration = 60) {
  StockConfig config;
  config.seed = seed;
  config.num_companies = 12;
  config.num_sectors = 4;
  config.rate = rate;
  config.duration = duration;
  config.drift = 0.3;
  return GenerateStockStream(catalog, config);
}

std::unique_ptr<ShardedRuntime> MakeSharded(
    const Catalog* catalog, const std::vector<QuerySpec>& workload,
    size_t num_shards, bool enable_sharing = true,
    size_t heartbeat_events = 64, size_t batch_size = 32) {
  ShardedOptions options;
  options.num_shards = num_shards;
  options.batch_size = batch_size;
  options.heartbeat_events = heartbeat_events;
  options.workload.engine.counter_mode = CounterMode::kExact;
  options.workload.sharing.enable_sharing = enable_sharing;
  auto rt = ShardedRuntime::Create(catalog, workload, options);
  EXPECT_TRUE(rt.ok()) << rt.status().ToString();
  return std::move(rt).value();
}

/// Streams `stream` through the sharded runtime, draining every 97 events
/// (exercising the watermark gate mid-stream) and after Flush; returns the
/// accumulated rows per query.
std::vector<std::vector<ResultRow>> RunSharded(ShardedRuntime* rt,
                                               const Stream& stream,
                                               size_t* mid_stream_rows =
                                                   nullptr) {
  std::vector<std::vector<ResultRow>> out(rt->num_queries());
  size_t i = 0;
  for (const Event& e : stream.events()) {
    Status s = rt->Process(e);
    EXPECT_TRUE(s.ok()) << s.ToString();
    if (++i % 97 == 0) {
      for (size_t q = 0; q < out.size(); ++q) {
        std::vector<ResultRow> rows = rt->TakeResults(q);
        if (mid_stream_rows != nullptr) *mid_stream_rows += rows.size();
        out[q].insert(out[q].end(), std::make_move_iterator(rows.begin()),
                      std::make_move_iterator(rows.end()));
      }
    }
  }
  Status s = rt->Flush();
  EXPECT_TRUE(s.ok()) << s.ToString();
  for (size_t q = 0; q < out.size(); ++q) {
    std::vector<ResultRow> rows = rt->TakeResults(q);
    out[q].insert(out[q].end(), std::make_move_iterator(rows.begin()),
                  std::make_move_iterator(rows.end()));
  }
  return out;
}

/// Single-threaded baseline over the same workload: the shared workload
/// engine when `enable_sharing`, else the same engine with sharing off —
/// the reference emission order per query.
std::vector<std::vector<ResultRow>> RunBaseline(
    const Catalog* catalog, const std::vector<QuerySpec>& workload,
    const Stream& stream, bool enable_sharing = true) {
  sharing::SharedEngineOptions options;
  options.engine.counter_mode = CounterMode::kExact;
  options.sharing.enable_sharing = enable_sharing;
  auto engine =
      sharing::SharedWorkloadEngine::Create(catalog, workload, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  std::vector<std::vector<ResultRow>> out(workload.size());
  for (const Event& e : stream.events()) {
    Status s = engine.value()->Process(e);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_TRUE(engine.value()->Flush().ok());
  for (size_t q = 0; q < workload.size(); ++q) {
    out[q] = engine.value()->TakeResults(q);
  }
  return out;
}

/// Exact comparison of the order, windows, groups and counters; aggregate
/// values cross-checked through RowsEquivalent (tolerance for SUM/AVG).
void ExpectRowsIdentical(const std::vector<ResultRow>& sharded,
                         const std::vector<ResultRow>& baseline,
                         const AggPlan& plan, const std::string& label) {
  ASSERT_EQ(sharded.size(), baseline.size()) << label;
  for (size_t i = 0; i < sharded.size(); ++i) {
    EXPECT_EQ(sharded[i].wid, baseline[i].wid) << label << " row " << i;
    ASSERT_EQ(sharded[i].group.size(), baseline[i].group.size())
        << label << " row " << i;
    for (size_t g = 0; g < sharded[i].group.size(); ++g) {
      EXPECT_TRUE(sharded[i].group[g] == baseline[i].group[g])
          << label << " row " << i << " group attr " << g;
    }
    EXPECT_EQ(sharded[i].aggs.count.ToDecimal(),
              baseline[i].aggs.count.ToDecimal())
        << label << " row " << i;
    EXPECT_EQ(sharded[i].aggs.type_count.ToDecimal(),
              baseline[i].aggs.type_count.ToDecimal())
        << label << " row " << i;
  }
  std::string diff;
  EXPECT_TRUE(RowsEquivalent(sharded, baseline, plan, &diff))
      << label << ": " << diff;
}

TEST(ShardRuntime, SingleQueryGroupedCountAcrossShardCountsAndSeeds) {
  for (uint64_t seed : {7u, 23u}) {
    auto catalog = std::make_unique<Catalog>();
    RegisterStockTypes(catalog.get());
    Stream stream = MakeStockStream(catalog.get(), seed);
    std::vector<QuerySpec> workload;
    workload.push_back(Parse(Q1Text(1.0, 10, 5), catalog.get()));
    auto baseline = RunBaseline(catalog.get(), workload, stream);
    for (size_t shards : {1u, 2u, 4u, 8u}) {
      auto rt = MakeSharded(catalog.get(), workload, shards);
      ASSERT_NE(rt, nullptr);
      EXPECT_TRUE(rt->partitioned());
      EXPECT_EQ(rt->num_shards(), shards);
      auto rows = RunSharded(rt.get(), stream);
      ExpectRowsIdentical(rows[0], baseline[0], rt->agg_plan_for(0),
                          "seed " + std::to_string(seed) + " shards " +
                              std::to_string(shards));
    }
  }
}

TEST(ShardRuntime, WatermarkReleasesRowsMidStream) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  Stream stream = MakeStockStream(catalog.get(), 5, /*rate=*/50,
                                  /*duration=*/80);
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(Q1Text(1.0, 8, 4), catalog.get()));
  auto rt = MakeSharded(catalog.get(), workload, 4, true,
                        /*heartbeat_events=*/32);
  ASSERT_NE(rt, nullptr);
  size_t mid_stream_rows = 0;
  auto rows = RunSharded(rt.get(), stream, &mid_stream_rows);
  // The idle-shard heartbeat must advance the low watermark well before
  // Flush: most windows close (and surface) mid-stream.
  EXPECT_GT(mid_stream_rows, rows[0].size() / 2)
      << "watermark protocol stalled: rows only surfaced at Flush";
}

TEST(ShardRuntime, SharedWorkloadDifferentAggregates) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  Stream stream = MakeStockStream(catalog.get(), 11);
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(Q1Text(1.0, 10, 5), catalog.get()));
  workload.push_back(
      Parse(Q1Text(1.0, 10, 5, "SUM(S.price)"), catalog.get()));
  workload.push_back(
      Parse(Q1Text(1.0, 10, 5, "MIN(S.price), MAX(S.price)"), catalog.get()));
  workload.push_back(Parse(Q1Text(1.0, 10, 5, "AVG(S.volume)"),
                           catalog.get()));
  auto baseline = RunBaseline(catalog.get(), workload, stream);
  for (size_t shards : {2u, 8u}) {
    auto rt = MakeSharded(catalog.get(), workload, shards);
    ASSERT_NE(rt, nullptr);
    auto rows = RunSharded(rt.get(), stream);
    for (size_t q = 0; q < workload.size(); ++q) {
      ExpectRowsIdentical(rows[q], baseline[q], rt->agg_plan_for(q),
                          "query " + std::to_string(q) + " shards " +
                              std::to_string(shards));
    }
  }
}

TEST(ShardRuntime, PartialSharingClusterEmitsOnUnionWindow) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  Stream stream = MakeStockStream(catalog.get(), 3);
  // Same Kleene core and predicates, different WITHIN, equal slide: pooled
  // into one partial cluster whose rows surface on the union window close.
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(Q1Text(1.0, 6, 2), catalog.get()));
  workload.push_back(Parse(Q1Text(1.0, 10, 2), catalog.get()));
  workload.push_back(Parse(Q1Text(1.0, 14, 2), catalog.get()));
  auto baseline = RunBaseline(catalog.get(), workload, stream);
  for (size_t shards : {2u, 4u}) {
    auto rt = MakeSharded(catalog.get(), workload, shards);
    ASSERT_NE(rt, nullptr);
    auto rows = RunSharded(rt.get(), stream);
    for (size_t q = 0; q < workload.size(); ++q) {
      ExpectRowsIdentical(rows[q], baseline[q], rt->agg_plan_for(q),
                          "partial query " + std::to_string(q) + " shards " +
                              std::to_string(shards));
    }
  }
}

TEST(ShardRuntime, IndependentWorkloadSharingDisabled) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  Stream stream = MakeStockStream(catalog.get(), 17);
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(Q1Text(1.00, 10, 5), catalog.get()));
  workload.push_back(Parse(Q1Text(1.01, 8, 4), catalog.get()));
  workload.push_back(Parse(Q1Text(0.99, 12, 6), catalog.get()));
  auto baseline =
      RunBaseline(catalog.get(), workload, stream, /*enable_sharing=*/false);
  auto rt = MakeSharded(catalog.get(), workload, 4, /*enable_sharing=*/false);
  ASSERT_NE(rt, nullptr);
  auto rows = RunSharded(rt.get(), stream);
  for (size_t q = 0; q < workload.size(); ++q) {
    ExpectRowsIdentical(rows[q], baseline[q], rt->agg_plan_for(q),
                        "independent query " + std::to_string(q));
  }
}

TEST(ShardRuntime, OutOfOrderInputResequencedByKSlack) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  Stream stream = MakeStockStream(catalog.get(), 29);

  // Disorder the stream with bounded displacement, then release through
  // K-slack: both runtimes consume the identical resequenced stream, the
  // sharded one must still match row for row.
  std::vector<Event> wire(stream.events().begin(), stream.events().end());
  std::mt19937 rng(1234);
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    size_t j = i + rng() % std::min<size_t>(wire.size() - i, 25);
    std::swap(wire[i], wire[j]);
  }
  KSlackBuffer buffer(/*slack=*/5);
  Stream reordered;
  for (Event& e : wire) {
    for (Event& ready : buffer.Push(std::move(e))) {
      reordered.Append(std::move(ready));
    }
  }
  for (Event& ready : buffer.Flush()) reordered.Append(std::move(ready));
  ASSERT_EQ(reordered.size() + buffer.dropped(), stream.size());

  std::vector<QuerySpec> workload;
  workload.push_back(Parse(Q1Text(1.0, 10, 5), catalog.get()));
  auto baseline = RunBaseline(catalog.get(), workload, reordered);
  for (size_t shards : {2u, 8u}) {
    auto rt = MakeSharded(catalog.get(), workload, shards);
    ASSERT_NE(rt, nullptr);
    auto rows = RunSharded(rt.get(), reordered);
    ExpectRowsIdentical(rows[0], baseline[0], rt->agg_plan_for(0),
                        "kslack shards " + std::to_string(shards));
  }
}

TEST(ShardRuntime, NonPartitionedQueryFallsBackToOneShard) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  Stream stream = MakeStockStream(catalog.get(), 41, /*rate=*/30,
                                  /*duration=*/40);
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE S.price > NEXT(S).price "
      "WITHIN 6 seconds SLIDE 3 seconds",
      catalog.get()));
  auto baseline = RunBaseline(catalog.get(), workload, stream);
  auto rt = MakeSharded(catalog.get(), workload, 8);
  ASSERT_NE(rt, nullptr);
  EXPECT_FALSE(rt->partitioned());
  EXPECT_EQ(rt->num_shards(), 1u) << "no partition key must clamp to shard 0";
  auto rows = RunSharded(rt.get(), stream);
  ExpectRowsIdentical(rows[0], baseline[0], rt->agg_plan_for(0), "fallback");
}

TEST(ShardRuntime, BroadcastTypeWithNegation) {
  // Linear Road Q3: Accident events lack the `vehicle` shard-key attribute
  // and must be broadcast to every shard, where each engine applies them to
  // its own partitions (negation barriers).
  auto catalog = std::make_unique<Catalog>();
  RegisterLinearRoadTypes(catalog.get());
  LinearRoadConfig config;
  config.seed = 13;
  config.num_vehicles = 24;
  config.num_segments = 6;
  config.rate = 40;
  config.duration = 50;
  config.accident_probability = 0.2;
  Stream stream = GenerateLinearRoadStream(catalog.get(), config);

  auto q3 = MakeQ3(catalog.get(), 8, 4);
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  std::vector<QuerySpec> workload;
  workload.push_back(std::move(q3).value());
  auto baseline = RunBaseline(catalog.get(), workload, stream);
  ASSERT_FALSE(baseline[0].empty());
  for (size_t shards : {2u, 4u}) {
    auto rt = MakeSharded(catalog.get(), workload, shards);
    ASSERT_NE(rt, nullptr);
    auto rows = RunSharded(rt.get(), stream);
    ExpectRowsIdentical(rows[0], baseline[0], rt->agg_plan_for(0),
                        "broadcast shards " + std::to_string(shards));
  }
}

TEST(ShardRuntime, KeyIntersectionAcrossDifferingQueries) {
  // Query 0 partitions by (sector, company), query 1 by (company) only: the
  // shard key is the intersection {company}, which is a prefix-consistent
  // partitioner for both.
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  Stream stream = MakeStockStream(catalog.get(), 53);
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(Q1Text(1.0, 10, 5), catalog.get()));
  workload.push_back(Parse(
      "RETURN company, COUNT(*) PATTERN Stock S+ WHERE [company] AND "
      "S.price > NEXT(S).price GROUP-BY company WITHIN 10 seconds SLIDE 5 "
      "seconds",
      catalog.get()));
  auto baseline = RunBaseline(catalog.get(), workload, stream);
  auto rt = MakeSharded(catalog.get(), workload, 4);
  ASSERT_NE(rt, nullptr);
  EXPECT_TRUE(rt->partitioned());
  ASSERT_EQ(rt->router().shard_key_attrs().size(), 1u);
  EXPECT_EQ(rt->router().shard_key_attrs()[0], "company");
  auto rows = RunSharded(rt.get(), stream);
  for (size_t q = 0; q < workload.size(); ++q) {
    ExpectRowsIdentical(rows[q], baseline[q], rt->agg_plan_for(q),
                        "intersection query " + std::to_string(q));
  }
}

TEST(ShardRuntime, RejectsOutOfOrderInput) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(Q1Text(1.0, 10, 5), catalog.get()));
  auto rt = MakeSharded(catalog.get(), workload, 2);
  ASSERT_NE(rt, nullptr);
  Event e1 = EventBuilder(catalog.get(), "Stock", 10)
                 .Set("company", 1)
                 .Set("sector", 1)
                 .Set("price", 10.0)
                 .Set("volume", 1)
                 .Set("kind", 0)
                 .Set("tx", 1)
                 .Build();
  Event e2 = e1;
  e2.time = 5;
  EXPECT_TRUE(rt->Process(e1).ok());
  EXPECT_FALSE(rt->Process(e2).ok());
  EXPECT_TRUE(rt->Flush().ok());
}

}  // namespace
}  // namespace greta
