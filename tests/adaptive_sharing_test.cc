// Adaptive sharing (stats-driven re-planning, src/sharing/): adaptive
// execution must produce BIT-IDENTICAL rows (counts/min/max exact, SUM/AVG
// within fp tolerance) to static execution on every configuration — across
// burst schedules, shard counts, and shared/partial/independent clusters —
// while actually migrating clusters when the observed load says the other
// mode wins, and NOT flapping on an oscillating load (hysteresis +
// cooldown).

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/parser.h"
#include "runtime/sharded_runtime.h"
#include "sharing/adaptive_planner.h"
#include "sharing/shared_engine.h"
#include "workload/stock.h"

namespace greta {
namespace {

using sharing::AdaptationStats;
using sharing::AdaptiveClusterPlanner;
using sharing::AdaptiveOptions;
using sharing::ClusterMode;
using sharing::ClusterShape;
using sharing::SharedEngineOptions;
using sharing::SharedWorkloadEngine;

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

// Window-diverse partial cluster: same Kleene core (Stock S+), core
// predicates, keys and slide; different WITHINs and aggregates, so exact
// clustering merges nothing but partial pooling merges all three. The
// union window (WITHIN 8) makes the merged runtime scan and fold over 4x
// the range a WITHIN-2 dedicated engine would — the load-dependent
// trade-off the adaptive planner arbitrates.
std::vector<QuerySpec> PartialWorkload(Catalog* catalog) {
  RegisterStockTypes(catalog);
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      "RETURN sector, COUNT(*), SUM(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 2 seconds SLIDE 2 seconds",
      catalog));
  workload.push_back(Parse(
      "RETURN sector, COUNT(*), MIN(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 4 seconds SLIDE 2 seconds",
      catalog));
  workload.push_back(Parse(
      "RETURN sector, COUNT(*), AVG(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 8 seconds SLIDE 2 seconds",
      catalog));
  return workload;
}

// Exact cluster (identical fingerprints, different aggregates) plus an
// independent query no cluster admits (different core predicate set).
std::vector<QuerySpec> MixedWorkload(Catalog* catalog) {
  RegisterStockTypes(catalog);
  std::vector<QuerySpec> workload = PartialWorkload(catalog);
  workload.push_back(Parse(
      "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] "
      "GROUP-BY sector WITHIN 4 seconds SLIDE 2 seconds",
      catalog));
  workload.push_back(Parse(
      "RETURN sector, MAX(S.volume) PATTERN Stock S+ "
      "WHERE [company, sector] GROUP-BY sector WITHIN 4 seconds SLIDE 2 "
      "seconds",
      catalog));
  workload.push_back(Parse(
      "RETURN company, COUNT(*) PATTERN Stock S+ WHERE [company] AND "
      "S.volume < NEXT(S).volume GROUP-BY company WITHIN 6 seconds SLIDE 3 "
      "seconds",
      catalog));
  return workload;
}

StockConfig BaseConfig() {
  StockConfig config;
  config.seed = 97;
  config.num_companies = 5;
  config.num_sectors = 2;
  config.rate = 8;  // quiet base rate
  config.duration = 60;
  config.drift = 0.0;
  return config;
}

StockConfig BurstyConfig() {
  StockConfig config = BaseConfig();
  // One sustained burst mid-stream: 8 ev/s -> 320 ev/s and back.
  config.bursts.push_back({20, 40, 40.0, 1.0});
  return config;
}

StockConfig OscillatingConfig() {
  StockConfig config = BaseConfig();
  // Load flips every 4 seconds (2 window-grid steps at slide 2) — faster
  // than the observation window can confirm a regime change.
  for (Ts t = 8; t + 4 <= 56; t += 8) {
    config.bursts.push_back({t, t + 4, 40.0, 1.0});
  }
  return config;
}

AdaptiveOptions AggressiveAdaptive() {
  AdaptiveOptions adaptive;
  adaptive.enabled = true;
  adaptive.observation_windows = 3;
  adaptive.min_windows_between_migrations = 4;
  adaptive.hysteresis = 1.2;
  return adaptive;
}

// Runs the workload through a SharedWorkloadEngine, draining every
// `drain_every` events (0: only at the end) — mid-stream drains cross
// migration handovers, which is exactly what must not reorder rows.
struct RunResult {
  std::vector<std::vector<ResultRow>> rows;  // per query
  size_t migrations = 0;
  std::vector<AdaptationStats> states;
};

RunResult RunShared(const Catalog* catalog,
                    const std::vector<QuerySpec>& workload,
                    const Stream& stream, const SharedEngineOptions& options,
                    size_t drain_every = 64) {
  auto engine = SharedWorkloadEngine::Create(catalog, workload, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  SharedWorkloadEngine& e = *engine.value();
  RunResult out;
  out.rows.resize(workload.size());
  size_t count = 0;
  for (const Event& ev : stream.events()) {
    EXPECT_TRUE(e.Process(ev).ok());
    if (drain_every > 0 && ++count % drain_every == 0) {
      for (size_t q = 0; q < workload.size(); ++q) {
        std::vector<ResultRow> rows = e.TakeResults(q);
        out.rows[q].insert(out.rows[q].end(),
                           std::make_move_iterator(rows.begin()),
                           std::make_move_iterator(rows.end()));
      }
    }
  }
  EXPECT_TRUE(e.Flush().ok());
  for (size_t q = 0; q < workload.size(); ++q) {
    std::vector<ResultRow> rows = e.TakeResults(q);
    out.rows[q].insert(out.rows[q].end(),
                       std::make_move_iterator(rows.begin()),
                       std::make_move_iterator(rows.end()));
  }
  out.migrations = e.total_migrations();
  out.states = e.adaptation_states();
  return out;
}

void ExpectRowsEquivalent(const Catalog* catalog,
                          const std::vector<QuerySpec>& workload,
                          const RunResult& a, const RunResult& b,
                          const std::string& label) {
  auto reference =
      SharedWorkloadEngine::Create(catalog, workload, SharedEngineOptions{});
  ASSERT_TRUE(reference.ok());
  for (size_t q = 0; q < workload.size(); ++q) {
    std::string diff;
    EXPECT_TRUE(RowsEquivalent(a.rows[q], b.rows[q],
                               reference.value()->agg_plan_for(q), &diff))
        << label << " query " << q << ": " << diff;
  }
}

// --- equivalence: adaptive == static, across burst schedules ---

class AdaptiveEquivalenceTest
    : public ::testing::TestWithParam<const char*> {};

TEST_P(AdaptiveEquivalenceTest, PartialClusterBitIdentical) {
  const std::string schedule = GetParam();
  auto catalog = std::make_unique<Catalog>();
  std::vector<QuerySpec> workload = PartialWorkload(catalog.get());
  StockConfig config = schedule == "uniform"       ? BaseConfig()
                       : schedule == "burst"       ? BurstyConfig()
                                                   : OscillatingConfig();
  Stream stream = GenerateStockStream(catalog.get(), config);

  SharedEngineOptions static_options;
  RunResult baseline =
      RunShared(catalog.get(), workload, stream, static_options);

  SharedEngineOptions adaptive_options;
  adaptive_options.adaptive = AggressiveAdaptive();
  RunResult adaptive =
      RunShared(catalog.get(), workload, stream, adaptive_options);

  ExpectRowsEquivalent(catalog.get(), workload, baseline, adaptive,
                       "schedule=" + schedule);
  for (size_t q = 0; q < workload.size(); ++q) {
    EXPECT_FALSE(baseline.rows[q].empty()) << "query " << q << " emitted "
                                              "nothing - vacuous test";
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, AdaptiveEquivalenceTest,
                         ::testing::Values("uniform", "burst",
                                           "oscillating"));

TEST(AdaptiveSharing, MixedWorkloadBitIdenticalUnderBurst) {
  auto catalog = std::make_unique<Catalog>();
  std::vector<QuerySpec> workload = MixedWorkload(catalog.get());
  Stream stream = GenerateStockStream(catalog.get(), BurstyConfig());

  RunResult baseline =
      RunShared(catalog.get(), workload, stream, SharedEngineOptions{});
  SharedEngineOptions adaptive_options;
  adaptive_options.adaptive = AggressiveAdaptive();
  RunResult adaptive =
      RunShared(catalog.get(), workload, stream, adaptive_options);
  ExpectRowsEquivalent(catalog.get(), workload, baseline, adaptive, "mixed");
}

// --- the loop actually migrates on a regime change ---

TEST(AdaptiveSharing, BurstTriggersSplitAndQuietRemerges) {
  auto catalog = std::make_unique<Catalog>();
  std::vector<QuerySpec> workload = PartialWorkload(catalog.get());
  StockConfig config = BaseConfig();
  config.duration = 90;
  config.bursts.push_back({20, 50, 40.0, 1.0});
  Stream stream = GenerateStockStream(catalog.get(), config);

  SharedEngineOptions options;
  options.adaptive = AggressiveAdaptive();
  RunResult adaptive = RunShared(catalog.get(), workload, stream, options);

  // The burst makes the merged runtime's union-range work dominate: the
  // cluster splits, and the long quiet tail re-merges it.
  ASSERT_EQ(adaptive.states.size(), 1u);
  EXPECT_GE(adaptive.migrations, 2u)
      << "expected a split during the burst and a re-merge after it";
  EXPECT_EQ(adaptive.states[0].mode, ClusterMode::kMerged)
      << "quiet tail should re-merge the cluster";
}

TEST(AdaptiveSharing, ExactClusterNeverSplits) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  // Fingerprint-identical pair: a merged exact runtime never repeats
  // structural work, so no load should ever split it.
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector WITHIN 4 seconds SLIDE 2 "
      "seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN sector, SUM(S.price) PATTERN Stock S+ WHERE [company, sector] "
      "AND S.price > NEXT(S).price GROUP-BY sector WITHIN 4 seconds SLIDE 2 "
      "seconds",
      catalog.get()));
  Stream stream = GenerateStockStream(catalog.get(), BurstyConfig());

  SharedEngineOptions options;
  options.adaptive = AggressiveAdaptive();
  RunResult adaptive = RunShared(catalog.get(), workload, stream, options);
  EXPECT_EQ(adaptive.migrations, 0u);
  ASSERT_FALSE(adaptive.states.empty());
  EXPECT_EQ(adaptive.states[0].mode, ClusterMode::kMerged);

  RunResult baseline =
      RunShared(catalog.get(), workload, stream, SharedEngineOptions{});
  ExpectRowsEquivalent(catalog.get(), workload, baseline, adaptive, "exact");
}

// --- hysteresis: no flapping on an oscillating load ---

TEST(AdaptiveSharing, HysteresisPreventsFlappingOnOscillatingLoad) {
  auto catalog = std::make_unique<Catalog>();
  std::vector<QuerySpec> workload = PartialWorkload(catalog.get());
  Stream stream = GenerateStockStream(catalog.get(), OscillatingConfig());

  SharedEngineOptions options;
  options.adaptive.enabled = true;  // default smoothing/hysteresis/cooldown
  RunResult adaptive = RunShared(catalog.get(), workload, stream, options);

  // 12 load flips over the run; a flapping controller would migrate on
  // most of them. The observation window (4 steps = 8s) spans a full
  // oscillation period (8s), so the smoothed rates stay near the middle
  // and the hysteresis band keeps the decision parked.
  EXPECT_LE(adaptive.migrations, 2u)
      << "controller flapped on an oscillating load";
}

// --- per-query row order across migrations ---

TEST(AdaptiveSharing, RowsStayWindowOrderedAcrossMigrations) {
  auto catalog = std::make_unique<Catalog>();
  std::vector<QuerySpec> workload = PartialWorkload(catalog.get());
  Stream stream = GenerateStockStream(catalog.get(), BurstyConfig());

  SharedEngineOptions options;
  options.adaptive = AggressiveAdaptive();
  // Tight drain cadence: pulls cross the handover repeatedly.
  RunResult adaptive =
      RunShared(catalog.get(), workload, stream, options, /*drain_every=*/7);
  EXPECT_GE(adaptive.migrations, 1u);
  for (size_t q = 0; q < workload.size(); ++q) {
    for (size_t i = 1; i < adaptive.rows[q].size(); ++i) {
      EXPECT_LE(adaptive.rows[q][i - 1].wid, adaptive.rows[q][i].wid)
          << "query " << q << " row " << i;
    }
  }
}

// --- push callbacks: no loss, no duplication, same content ---

TEST(AdaptiveSharing, CallbackDeliveryMatchesPullAcrossMigrations) {
  auto catalog = std::make_unique<Catalog>();
  std::vector<QuerySpec> workload = PartialWorkload(catalog.get());
  Stream stream = GenerateStockStream(catalog.get(), BurstyConfig());

  SharedEngineOptions options;
  options.adaptive = AggressiveAdaptive();
  auto engine =
      SharedWorkloadEngine::Create(catalog.get(), workload, options);
  ASSERT_TRUE(engine.ok());
  std::vector<std::vector<ResultRow>> pushed(workload.size());
  engine.value()->set_result_callback(
      [&pushed](size_t q, const ResultRow& row) {
        pushed[q].push_back(row);
      });
  for (const Event& ev : stream.events()) {
    ASSERT_TRUE(engine.value()->Process(ev).ok());
  }
  ASSERT_TRUE(engine.value()->Flush().ok());
  EXPECT_GE(engine.value()->total_migrations(), 1u);

  RunResult baseline =
      RunShared(catalog.get(), workload, stream, SharedEngineOptions{});
  for (size_t q = 0; q < workload.size(); ++q) {
    std::string diff;
    EXPECT_TRUE(RowsEquivalent(baseline.rows[q], pushed[q],
                               engine.value()->agg_plan_for(q), &diff))
        << "query " << q << ": " << diff;
  }
}

// --- sharded: per-shard controllers, deterministic merged rows ---

class AdaptiveShardedTest : public ::testing::TestWithParam<size_t> {};

TEST_P(AdaptiveShardedTest, ShardedAdaptiveMatchesStaticSingleThreaded) {
  const size_t shards = GetParam();
  auto catalog = std::make_unique<Catalog>();
  std::vector<QuerySpec> workload = MixedWorkload(catalog.get());
  Stream stream = GenerateStockStream(catalog.get(), BurstyConfig());

  RunResult baseline =
      RunShared(catalog.get(), workload, stream, SharedEngineOptions{});

  runtime::ShardedOptions options;
  options.num_shards = shards;
  options.batch_size = 16;
  options.heartbeat_events = 64;
  options.workload.adaptive = AggressiveAdaptive();
  auto rt = runtime::ShardedRuntime::Create(catalog.get(), workload, options);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  std::vector<std::vector<ResultRow>> rows(workload.size());
  size_t count = 0;
  for (const Event& ev : stream.events()) {
    ASSERT_TRUE(rt.value()->Process(ev).ok());
    if (++count % 128 == 0) {
      for (size_t q = 0; q < workload.size(); ++q) {
        std::vector<ResultRow> r = rt.value()->TakeResults(q);
        rows[q].insert(rows[q].end(), std::make_move_iterator(r.begin()),
                       std::make_move_iterator(r.end()));
      }
    }
  }
  ASSERT_TRUE(rt.value()->Flush().ok());
  for (size_t q = 0; q < workload.size(); ++q) {
    std::vector<ResultRow> r = rt.value()->TakeResults(q);
    rows[q].insert(rows[q].end(), std::make_move_iterator(r.begin()),
                   std::make_move_iterator(r.end()));
  }

  for (size_t q = 0; q < workload.size(); ++q) {
    std::string diff;
    EXPECT_TRUE(RowsEquivalent(baseline.rows[q], rows[q],
                               rt.value()->agg_plan_for(q), &diff))
        << "shards=" << shards << " query " << q << ": " << diff;
  }
  // Telemetry is reachable and consistent once quiescent.
  size_t migrations = 0;
  for (size_t s = 0; s < rt.value()->num_shards(); ++s) {
    for (const AdaptationStats& st : rt.value()->ShardAdaptationStates(s)) {
      migrations += st.migrations;
    }
  }
  EXPECT_EQ(migrations, rt.value()->TotalMigrations());
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, AdaptiveShardedTest,
                         ::testing::Values(1, 4));

// --- planner unit tests (pure decision logic) ---

ClusterShape DiverseShape() {
  ClusterShape shape;
  shape.num_queries = 3;
  shape.dedicated_passes = 3.0;
  shape.merged_quad = 80.0;     // (1 + 4 cells) * (union k=4)^2
  shape.dedicated_quad = 42.0;  // 2 * (1 + 4 + 16)
  return shape;
}

WindowObservation Step(size_t events, size_t edges) {
  WindowObservation obs;
  obs.events_routed = events;
  obs.edges_traversed = edges;
  return obs;
}

TEST(AdaptiveClusterPlannerTest, NoDecisionBeforeHistoryFills) {
  AdaptiveOptions options;
  options.enabled = true;
  options.observation_windows = 4;
  options.min_windows_between_migrations = 0;
  AdaptiveClusterPlanner planner(DiverseShape(), ClusterMode::kMerged,
                                 options);
  planner.Observe(Step(1000, 4000000));
  planner.Observe(Step(1000, 4000000));
  planner.Observe(Step(1000, 4000000));
  EXPECT_EQ(planner.Decide(), ClusterMode::kMerged);
  planner.Observe(Step(1000, 4000000));
  EXPECT_EQ(planner.Decide(), ClusterMode::kDedicated);
}

TEST(AdaptiveClusterPlannerTest, QuietLoadPrefersMergedAndBurstSplits) {
  AdaptiveOptions options;
  options.enabled = true;
  options.observation_windows = 2;
  options.min_windows_between_migrations = 0;
  AdaptiveClusterPlanner planner(DiverseShape(), ClusterMode::kMerged,
                                 options);
  // Quiet: structural work negligible, dedicated would pay 3 engine
  // passes per event to the merged runtime's one.
  planner.Observe(Step(10, 50));
  planner.Observe(Step(10, 50));
  EXPECT_EQ(planner.Decide(), ClusterMode::kMerged);
  // Burst: quadratic union-range work dwarfs the per-event term.
  planner.Observe(Step(2000, 30000000));
  planner.Observe(Step(2000, 30000000));
  EXPECT_EQ(planner.Decide(), ClusterMode::kDedicated);
  planner.OnMigrationApplied(ClusterMode::kDedicated);
  // Back to quiet: re-merge.
  planner.Observe(Step(10, 30));
  planner.Observe(Step(10, 30));
  EXPECT_EQ(planner.Decide(), ClusterMode::kMerged);
}

TEST(AdaptiveClusterPlannerTest, CooldownBlocksImmediateReversal) {
  AdaptiveOptions options;
  options.enabled = true;
  options.observation_windows = 1;
  options.min_windows_between_migrations = 5;
  AdaptiveClusterPlanner planner(DiverseShape(), ClusterMode::kMerged,
                                 options);
  planner.Observe(Step(2000, 30000000));
  EXPECT_EQ(planner.Decide(), ClusterMode::kDedicated);
  planner.OnMigrationApplied(ClusterMode::kDedicated);
  for (int i = 0; i < 4; ++i) {
    planner.Observe(Step(10, 30));
    EXPECT_EQ(planner.Decide(), ClusterMode::kDedicated)
        << "cooldown step " << i;
  }
  planner.Observe(Step(10, 30));
  EXPECT_EQ(planner.Decide(), ClusterMode::kMerged);
}

TEST(AdaptiveClusterPlannerTest, IdleWindowsNeverMigrate) {
  AdaptiveOptions options;
  options.enabled = true;
  options.observation_windows = 1;
  options.min_windows_between_migrations = 0;
  AdaptiveClusterPlanner planner(DiverseShape(), ClusterMode::kDedicated,
                                 options);
  planner.Observe(Step(0, 0));
  EXPECT_EQ(planner.Decide(), ClusterMode::kDedicated);
}

// --- observation hook sanity at the workload level ---

TEST(AdaptiveSharing, WorkloadObservationsTrackBurst) {
  auto catalog = std::make_unique<Catalog>();
  std::vector<QuerySpec> workload = PartialWorkload(catalog.get());
  Stream stream = GenerateStockStream(catalog.get(), BurstyConfig());

  SharedEngineOptions options;
  options.adaptive = AggressiveAdaptive();
  auto engine =
      SharedWorkloadEngine::Create(catalog.get(), workload, options);
  ASSERT_TRUE(engine.ok());
  size_t max_events = 0;
  size_t min_events = SIZE_MAX;
  size_t steps = 0;
  for (const Event& ev : stream.events()) {
    ASSERT_TRUE(engine.value()->Process(ev).ok());
    for (const WindowObservation& obs :
         engine.value()->TakeWindowObservations()) {
      max_events = std::max(max_events, obs.events_routed);
      min_events = std::min(min_events, obs.events_routed);
      ++steps;
    }
  }
  ASSERT_TRUE(engine.value()->Flush().ok());
  EXPECT_GT(steps, 10u);
  // The burst must be visible in the observed per-window rates.
  EXPECT_GE(max_events, 500u);
  EXPECT_LE(min_events, 30u);
}

}  // namespace
}  // namespace greta
