// Tests for predicate expressions, classification (Section 6) and the edge
// predicate range extraction used by the Vertex Trees (Example 7/Figure 10).

#include <memory>

#include "gtest/gtest.h"
#include "predicate/classify.h"
#include "predicate/expr.h"
#include "predicate/range.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::MakeGreta;
using testing::PaperCatalog;
using testing::RunEngine;
using testing::SingleCount;

Event MakeA(Catalog* catalog, Ts time, double attr) {
  return EventBuilder(catalog, "A", time).Set("attr", attr).Build();
}

TEST(ExprTest, VertexEvaluation) {
  auto catalog = PaperCatalog();
  Event e = MakeA(catalog.get(), 1, 7.0);
  // A.attr * 2 + 1 > 14  ->  15 > 14  -> true.
  ExprPtr pred = Expr::Binary(
      ExprOp::kGt,
      Expr::Binary(ExprOp::kAdd,
                   Expr::Binary(ExprOp::kMul, Expr::Attr(0, 0),
                                Expr::Const(Value::Int(2))),
                   Expr::Const(Value::Int(1))),
      Expr::Const(Value::Int(14)));
  EXPECT_TRUE(pred->EvalVertex(e).Truthy());
}

TEST(ExprTest, EdgeEvaluationReadsBothEvents) {
  auto catalog = PaperCatalog();
  Event u = MakeA(catalog.get(), 1, 5.0);
  Event v = MakeA(catalog.get(), 2, 9.0);
  ExprPtr pred = Expr::Binary(ExprOp::kLt, Expr::Attr(0, 0),
                              Expr::NextAttr(0, 0));
  EXPECT_TRUE(pred->EvalEdge(u, v).Truthy());
  EXPECT_FALSE(pred->EvalEdge(v, u).Truthy());
}

TEST(ExprTest, DivisionByZeroIsFalsy) {
  auto catalog = PaperCatalog();
  Event e = MakeA(catalog.get(), 1, 7.0);
  ExprPtr pred = Expr::Binary(
      ExprOp::kGt,
      Expr::Binary(ExprOp::kDiv, Expr::Attr(0, 0),
                   Expr::Const(Value::Int(0))),
      Expr::Const(Value::Int(0)));
  EXPECT_FALSE(pred->EvalVertex(e).Truthy());
}

TEST(ExprTest, BooleanConnectivesShortCircuit) {
  auto catalog = PaperCatalog();
  Event e = MakeA(catalog.get(), 1, 7.0);
  ExprPtr t = Expr::Const(Value::Bool(true));
  ExprPtr f = Expr::Const(Value::Bool(false));
  EXPECT_TRUE(Expr::Binary(ExprOp::kOr, f->Clone(), t->Clone())
                  ->EvalVertex(e)
                  .Truthy());
  EXPECT_FALSE(Expr::Binary(ExprOp::kAnd, t->Clone(), f->Clone())
                   ->EvalVertex(e)
                   .Truthy());
}

TEST(ClassifyTest, LocalEdgeAndConstant) {
  auto local = ClassifyPredicate(*Expr::Binary(
      ExprOp::kGt, Expr::Attr(0, 0), Expr::Const(Value::Int(3))));
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local.value().cls, PredicateClass::kLocal);
  EXPECT_EQ(local.value().base_type, 0);

  auto edge = ClassifyPredicate(*Expr::Binary(
      ExprOp::kLt, Expr::Attr(0, 0), Expr::NextAttr(0, 0)));
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(edge.value().cls, PredicateClass::kEdge);
  EXPECT_EQ(edge.value().base_type, 0);
  EXPECT_EQ(edge.value().next_type, 0);

  auto constant = ClassifyPredicate(*Expr::Const(Value::Bool(true)));
  ASSERT_TRUE(constant.ok());
  EXPECT_EQ(constant.value().cls, PredicateClass::kConstant);
}

TEST(ClassifyTest, RejectsCrossTypeWithoutNext) {
  auto bad = ClassifyPredicate(
      *Expr::Binary(ExprOp::kEq, Expr::Attr(0, 0), Expr::Attr(1, 0)));
  EXPECT_FALSE(bad.ok());
}

TEST(ClassifyTest, EdgeAcrossTypes) {
  // M.load < NEXT(E).x style: base M, next E.
  auto edge = ClassifyPredicate(*Expr::Binary(
      ExprOp::kLt, Expr::Attr(1, 0), Expr::NextAttr(2, 0)));
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(edge.value().base_type, 1);
  EXPECT_EQ(edge.value().next_type, 2);
}

TEST(RangeExtractionTest, SimpleComparison) {
  auto catalog = PaperCatalog();
  // A.attr < NEXT(A).attr: candidates are prev events with attr < v.attr.
  ExprPtr pred = Expr::Binary(ExprOp::kLt, Expr::Attr(0, 0),
                              Expr::NextAttr(0, 0));
  auto range = RangeExtraction::FromPredicate(*pred);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->key_attr(), 0);
  Event v = MakeA(catalog.get(), 5, 10.0);
  KeyBounds b = range->ComputeBounds(v);
  EXPECT_TRUE(b.Contains(9.9));
  EXPECT_FALSE(b.Contains(10.0));  // strict
  EXPECT_FALSE(b.Contains(11.0));
}

TEST(RangeExtractionTest, ScaledComparisonQ1Variation) {
  // S.price * 1.05 > NEXT(S).price  ->  prev.price > v.price / 1.05.
  auto catalog = PaperCatalog();
  ExprPtr pred = Expr::Binary(
      ExprOp::kGt,
      Expr::Binary(ExprOp::kMul, Expr::Attr(0, 0),
                   Expr::Const(Value::Double(1.05))),
      Expr::NextAttr(0, 0));
  auto range = RangeExtraction::FromPredicate(*pred);
  ASSERT_TRUE(range.has_value());
  Event v = MakeA(catalog.get(), 5, 105.0);
  KeyBounds b = range->ComputeBounds(v);
  EXPECT_FALSE(b.Contains(99.9));
  EXPECT_TRUE(b.Contains(100.1));
}

TEST(RangeExtractionTest, MirroredOrientation) {
  // NEXT(A).attr >= A.attr - 3  ->  prev.attr <= v.attr + 3.
  ExprPtr pred = Expr::Binary(
      ExprOp::kGe, Expr::NextAttr(0, 0),
      Expr::Binary(ExprOp::kSub, Expr::Attr(0, 0),
                    Expr::Const(Value::Int(3))));
  auto range = RangeExtraction::FromPredicate(*pred);
  ASSERT_TRUE(range.has_value());
  auto catalog = PaperCatalog();
  Event v = MakeA(catalog.get(), 5, 10.0);
  KeyBounds b = range->ComputeBounds(v);
  EXPECT_TRUE(b.Contains(13.0));
  EXPECT_FALSE(b.Contains(13.01));
}

TEST(RangeExtractionTest, NegativeScaleFlipsComparison) {
  // A.attr * -1 < NEXT(A).attr  ->  prev.attr > -v.attr.
  ExprPtr pred = Expr::Binary(
      ExprOp::kLt,
      Expr::Binary(ExprOp::kMul, Expr::Attr(0, 0),
                   Expr::Const(Value::Int(-1))),
      Expr::NextAttr(0, 0));
  auto range = RangeExtraction::FromPredicate(*pred);
  ASSERT_TRUE(range.has_value());
  auto catalog = PaperCatalog();
  Event v = MakeA(catalog.get(), 5, 10.0);
  KeyBounds b = range->ComputeBounds(v);
  EXPECT_TRUE(b.Contains(-9.9));
  EXPECT_FALSE(b.Contains(-10.0));
}

TEST(RangeExtractionTest, UnextractableShapesFallBack) {
  // prev.attr * next.attr > 3 is quadratic in the pair: no extraction.
  ExprPtr pred = Expr::Binary(
      ExprOp::kGt,
      Expr::Binary(ExprOp::kMul, Expr::Attr(0, 0), Expr::NextAttr(0, 0)),
      Expr::Const(Value::Int(3)));
  EXPECT_FALSE(RangeExtraction::FromPredicate(*pred).has_value());
  // != has no range form either.
  ExprPtr ne = Expr::Binary(ExprOp::kNe, Expr::Attr(0, 0),
                            Expr::NextAttr(0, 0));
  EXPECT_FALSE(RangeExtraction::FromPredicate(*ne).has_value());
}

TEST(EdgePredicateEndToEndTest, Figure10IncreasingAttr) {
  // Example 7: A+ with A.attr < NEXT(A).attr over a1(5), a2(6), a3(4):
  // increasing runs only: (a1), (a2), (a3), (a1,a2) -> COUNT(*) = 4.
  auto catalog = PaperCatalog();
  QuerySpec spec = testing::CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.where.push_back(Expr::Binary(ExprOp::kLt, Expr::Attr(0, 0),
                                    Expr::NextAttr(0, 0)));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream;
  stream.Append(MakeA(catalog.get(), 1, 5.0));
  stream.Append(MakeA(catalog.get(), 2, 6.0));
  stream.Append(MakeA(catalog.get(), 3, 4.0));
  EXPECT_EQ(SingleCount(RunEngine(engine.get(), stream)), "4");
}

TEST(EdgePredicateEndToEndTest, LocalPredicateFiltersVertices) {
  // A+ with A.attr > 4: only a1(5) and a2(6) enter the graph -> 3 trends.
  auto catalog = PaperCatalog();
  QuerySpec spec = testing::CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.where.push_back(Expr::Binary(ExprOp::kGt, Expr::Attr(0, 0),
                                    Expr::Const(Value::Int(4))));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream;
  stream.Append(MakeA(catalog.get(), 1, 5.0));
  stream.Append(MakeA(catalog.get(), 2, 6.0));
  stream.Append(MakeA(catalog.get(), 3, 4.0));
  EXPECT_EQ(SingleCount(RunEngine(engine.get(), stream)), "3");
}

TEST(EdgePredicateEndToEndTest, ConstantFalseWhereMatchesNothing) {
  auto catalog = PaperCatalog();
  QuerySpec spec = testing::CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.where.push_back(Expr::Const(Value::Bool(false)));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream;
  stream.Append(MakeA(catalog.get(), 1, 5.0));
  EXPECT_TRUE(RunEngine(engine.get(), stream).empty());
}

}  // namespace
}  // namespace greta
