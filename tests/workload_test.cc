// Tests for the workload generators (Section 10.1): schemas, stream rates,
// Table-2 distributions, query factories, and end-to-end sanity of Q1-Q3 on
// small streams (GRETA vs oracle).

#include <cmath>

#include "gtest/gtest.h"
#include "tests/test_util.h"
#include "workload/cluster.h"
#include "workload/linear_road.h"
#include "workload/stock.h"

namespace greta {
namespace {

using testing::ExpectMatchesOracle;

TEST(StockWorkloadTest, GeneratesConfiguredRate) {
  Catalog catalog;
  StockConfig config;
  config.rate = 50;
  config.duration = 20;
  Stream stream = GenerateStockStream(&catalog, config);
  EXPECT_EQ(stream.size(), 1000u);
  TypeId stock = catalog.FindType("Stock");
  ASSERT_NE(stock, kInvalidType);
  AttrId sector = catalog.type(stock).FindAttr("sector");
  AttrId company = catalog.type(stock).FindAttr("company");
  AttrId price = catalog.type(stock).FindAttr("price");
  for (const Event& e : stream.events()) {
    EXPECT_EQ(e.type, stock);
    EXPECT_GE(e.attr(company).AsInt(), 0);
    EXPECT_LT(e.attr(company).AsInt(), config.num_companies);
    EXPECT_EQ(e.attr(sector).AsInt(),
              e.attr(company).AsInt() % config.num_sectors);
    EXPECT_GE(e.attr(price).ToDouble(), 1.0);
  }
}

TEST(StockWorkloadTest, DeterministicUnderSeed) {
  Catalog c1;
  Catalog c2;
  StockConfig config;
  config.duration = 5;
  Stream s1 = GenerateStockStream(&c1, config);
  Stream s2 = GenerateStockStream(&c2, config);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_TRUE(s1[i].attrs[2] == s2[i].attrs[2]);
  }
}

TEST(StockWorkloadTest, HaltsEmittedWhenEnabled) {
  Catalog catalog;
  StockConfig config;
  config.halt_probability = 0.5;
  config.duration = 20;
  config.rate = 5;
  Stream stream = GenerateStockStream(&catalog, config);
  TypeId halt = catalog.FindType("Halt");
  size_t halts = 0;
  for (const Event& e : stream.events()) halts += (e.type == halt) ? 1 : 0;
  EXPECT_GT(halts, 10u);
}

TEST(ClusterWorkloadTest, Table2Distributions) {
  Catalog catalog;
  ClusterConfig config;
  config.rate = 500;
  config.duration = 20;
  Stream stream = GenerateClusterStream(&catalog, config);
  TypeId m = catalog.FindType("Measurement");
  AttrId cpu = catalog.type(m).FindAttr("cpu");
  AttrId load = catalog.type(m).FindAttr("load");
  double cpu_sum = 0;
  double load_sum = 0;
  size_t count = 0;
  for (const Event& e : stream.events()) {
    if (e.type != m) continue;
    double c = e.attr(cpu).ToDouble();
    double l = e.attr(load).ToDouble();
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1000.0);  // Table 2: uniform 0-1k.
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 10000.0);  // Table 2: 0-10k.
    cpu_sum += c;
    load_sum += l;
    ++count;
  }
  ASSERT_GT(count, 1000u);
  EXPECT_NEAR(cpu_sum / count, 500.0, 25.0);   // Uniform mean.
  EXPECT_NEAR(load_sum / count, 100.0, 5.0);   // Poisson(100) mean.
}

TEST(ClusterWorkloadTest, StartAndEndEventsBracketMeasurements) {
  Catalog catalog;
  ClusterConfig config;
  config.duration = 10;
  Stream stream = GenerateClusterStream(&catalog, config);
  TypeId start = catalog.FindType("Start");
  size_t starts = 0;
  for (const Event& e : stream.events()) starts += (e.type == start) ? 1 : 0;
  // Every (job, mapper) pair starts at least once.
  EXPECT_GE(starts, static_cast<size_t>(config.num_jobs) *
                        static_cast<size_t>(config.num_mappers));
}

TEST(LinearRoadWorkloadTest, SelectivityFactorFormula) {
  EXPECT_NEAR(SelectivityToFactor(0.25), 0.5, 1e-9);
  EXPECT_NEAR(SelectivityToFactor(0.5), 1.0, 1e-9);
  EXPECT_NEAR(SelectivityToFactor(0.75), 2.0, 1e-9);
}

TEST(LinearRoadWorkloadTest, MeasuredPairSelectivityMatchesRequest) {
  // Empirically check P(u * X > v) over the generated uniform speeds.
  Catalog catalog;
  LinearRoadConfig config;
  config.rate = 2000;
  config.duration = 5;
  Stream stream = GenerateLinearRoadStream(&catalog, config);
  TypeId pos = catalog.FindType("Position");
  AttrId speed = catalog.type(pos).FindAttr("speed");
  for (double s : {0.2, 0.5, 0.8}) {
    double factor = SelectivityToFactor(s);
    size_t hits = 0;
    size_t total = 0;
    const auto& events = stream.events();
    for (size_t i = 1; i < events.size(); ++i) {
      if (events[i - 1].type != pos || events[i].type != pos) continue;
      ++total;
      if (events[i - 1].attr(speed).ToDouble() * factor >
          events[i].attr(speed).ToDouble()) {
        ++hits;
      }
    }
    ASSERT_GT(total, 1000u);
    EXPECT_NEAR(static_cast<double>(hits) / total, s, 0.03) << "s=" << s;
  }
}

TEST(QueryFactoryTest, Q1EndToEndSmall) {
  Catalog catalog;
  StockConfig config;
  config.num_companies = 3;
  config.num_sectors = 2;
  config.rate = 3;
  config.duration = 12;
  Stream stream = GenerateStockStream(&catalog, config);
  auto q1 = MakeQ1(&catalog, /*within=*/6, /*slide=*/3);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  ExpectMatchesOracle(&catalog, q1.value(), stream);
}

TEST(QueryFactoryTest, Q1NegationEndToEndSmall) {
  Catalog catalog;
  StockConfig config;
  config.num_companies = 2;
  config.num_sectors = 2;
  config.rate = 3;
  config.duration = 12;
  config.halt_probability = 0.2;
  Stream stream = GenerateStockStream(&catalog, config);
  auto q1 = MakeQ1WithNegation(&catalog, /*within=*/6, /*slide=*/3);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  ExpectMatchesOracle(&catalog, q1.value(), stream);
}

TEST(QueryFactoryTest, Q2EndToEndSmall) {
  Catalog catalog;
  ClusterConfig config;
  config.num_mappers = 2;
  config.num_jobs = 2;
  config.rate = 4;
  config.duration = 12;
  Stream stream = GenerateClusterStream(&catalog, config);
  auto q2 = MakeQ2(&catalog, /*within=*/6, /*slide=*/3);
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  ExpectMatchesOracle(&catalog, q2.value(), stream);
}

TEST(QueryFactoryTest, Q3EndToEndSmall) {
  Catalog catalog;
  LinearRoadConfig config;
  config.num_vehicles = 3;
  config.num_segments = 2;
  config.rate = 3;
  config.duration = 12;
  config.accident_probability = 0.3;
  Stream stream = GenerateLinearRoadStream(&catalog, config);
  auto q3 = MakeQ3(&catalog, /*within=*/6, /*slide=*/3);
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  ExpectMatchesOracle(&catalog, q3.value(), stream);
}

TEST(QueryFactoryTest, Q3SelectivityEndToEndSmall) {
  Catalog catalog;
  LinearRoadConfig config;
  config.num_vehicles = 3;
  config.num_segments = 2;
  config.rate = 3;
  config.duration = 10;
  Stream stream = GenerateLinearRoadStream(&catalog, config);
  auto q3 = MakeQ3Selectivity(&catalog, /*within=*/5, /*slide=*/5,
                              /*selectivity=*/0.5);
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  ExpectMatchesOracle(&catalog, q3.value(), stream);
}

}  // namespace
}  // namespace greta
