// Memory accounting invariants: the O(1) incremental byte counters
// maintained at the allocation sites (pane creation, vertex insert, arena
// chunk growth, tree node growth) must equal a from-scratch recomputation —
// at any point mid-stream, at window close, and after Purge — and the
// MemoryTracker must see exactly the same totals.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/parser.h"
#include "runtime/sharded_runtime.h"
#include "storage/pane.h"
#include "tests/test_util.h"
#include "workload/stock.h"

namespace greta {
namespace {

using testing::MakeGreta;

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

// --- PaneStore level ---

struct PlainVertex {
  int64_t payload[6] = {0};
};

TEST(MemoryInvariant, PaneStoreIncrementalMatchesRecompute) {
  MemoryTracker tracker;
  {
    PaneStore<PlainVertex> store(10, 3, &tracker);
    for (Ts t = 0; t < 500; ++t) {
      // Arena allocations interleaved with inserts, like the graph does.
      Arena* arena = store.ArenaFor(t);
      arena->AllocateArray<int64_t>(static_cast<size_t>(t % 7) + 1);
      store.Insert(t, static_cast<size_t>(t % 3),
                   static_cast<double>(t % 13), PlainVertex{});
      if (t % 97 == 0) {
        EXPECT_EQ(store.ApproxBytes(), store.RecomputeApproxBytes())
            << "at t=" << t;
        EXPECT_EQ(tracker.current_bytes(), store.ApproxBytes());
      }
    }
    EXPECT_EQ(store.ApproxBytes(), store.RecomputeApproxBytes());
    EXPECT_EQ(tracker.current_bytes(), store.ApproxBytes());

    size_t freed = store.PurgeBefore(250);
    EXPECT_GT(freed, 0u);
    EXPECT_EQ(store.ApproxBytes(), store.RecomputeApproxBytes());
    EXPECT_EQ(tracker.current_bytes(), store.ApproxBytes());

    store.PurgeBefore(10000);
    EXPECT_EQ(store.RecomputeApproxBytes(), 0u);
    EXPECT_EQ(store.ApproxBytes(), 0u);
    EXPECT_EQ(tracker.current_bytes(), 0u);
  }
  // Destruction releases whatever was still charged.
  EXPECT_EQ(tracker.current_bytes(), 0u);
}

// --- Engine level ---

// Streams events through `spec` and asserts, at every window close (the
// engine emitted rows) and at the end, that the tracker's current bytes
// equal a from-scratch walk of every partition's panes.
void ExpectEngineInvariant(const std::string& text, CounterMode mode) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  QuerySpec spec = Parse(text, catalog.get());

  StockConfig config;
  config.seed = 23;
  config.num_companies = 5;
  config.num_sectors = 2;
  config.rate = 30;
  config.duration = 40;
  Stream stream = GenerateStockStream(catalog.get(), config);

  EngineOptions options;
  options.counter_mode = mode;
  auto engine = MakeGreta(catalog.get(), spec, options);

  size_t checks = 0;
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(engine->Process(e).ok());
    std::vector<ResultRow> rows = engine->TakeResults();
    if (!rows.empty() || checks % 64 == 0) {
      // Window close (rows emitted) means ForgetWindow + Purge just ran.
      EXPECT_EQ(engine->RecomputeTrackedBytes(),
                engine->memory().current_bytes())
          << text << " after event seq " << e.seq;
    }
    ++checks;
  }
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->RecomputeTrackedBytes(),
            engine->memory().current_bytes())
      << text << " after flush";
  EXPECT_GE(engine->memory().peak_bytes(), engine->memory().current_bytes());
}

TEST(MemoryInvariant, CountQuerySlidingWindow) {
  ExpectEngineInvariant(
      "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds SLIDE 5 "
      "seconds",
      CounterMode::kModular);
}

TEST(MemoryInvariant, AttributeAggregatesExactMode) {
  ExpectEngineInvariant(
      "RETURN sector, MIN(S.price), MAX(S.price), AVG(S.price) PATTERN "
      "Stock S+ WHERE [company, sector] GROUP-BY sector WITHIN 8 seconds "
      "SLIDE 4 seconds",
      CounterMode::kExact);
}

// --- Sharded runtime level ---

// Each shard accounts into its own tracker (child of the workload roll-up):
// when the runtime is quiescent, every shard's incremental bytes must equal
// a from-scratch recomputation of that shard's engine, and the roll-up must
// equal the sum — the aggregation-safety contract of concurrent shards.
TEST(MemoryInvariant, ShardedPerShardTrackersSumIntoRollup) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds SLIDE 5 "
      "seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN sector, SUM(S.price) PATTERN Stock S+ WHERE [company, sector] "
      "AND S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds SLIDE 5 "
      "seconds",
      catalog.get()));

  StockConfig config;
  config.seed = 31;
  config.num_companies = 8;
  config.num_sectors = 3;
  config.rate = 30;
  config.duration = 40;
  Stream stream = GenerateStockStream(catalog.get(), config);

  runtime::ShardedOptions options;
  options.num_shards = 4;
  options.batch_size = 16;
  options.heartbeat_events = 64;
  auto rt = runtime::ShardedRuntime::Create(catalog.get(), workload, options);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  runtime::ShardedRuntime& runtime = *rt.value();
  ASSERT_EQ(runtime.num_shards(), 4u);

  // Quiescent checkpoints: Flush() drains every shard's queue, so the
  // engine walk cannot race the shard workers.
  size_t checkpoints = 0;
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(runtime.Process(e).ok());
    if (e.seq % 256 == 0) {
      ASSERT_TRUE(runtime.Flush().ok());
      size_t sum = 0;
      for (size_t s = 0; s < runtime.num_shards(); ++s) {
        EXPECT_EQ(runtime.RecomputeShardTrackedBytes(s),
                  runtime.shard_memory(s).current_bytes())
            << "shard " << s << " at seq " << e.seq;
        sum += runtime.shard_memory(s).current_bytes();
      }
      EXPECT_EQ(runtime.memory().current_bytes(), sum)
          << "roll-up at seq " << e.seq;
      ++checkpoints;
    }
  }
  ASSERT_TRUE(runtime.Flush().ok());
  EXPECT_GT(checkpoints, 2u);

  size_t sum = 0;
  for (size_t s = 0; s < runtime.num_shards(); ++s) {
    EXPECT_EQ(runtime.RecomputeShardTrackedBytes(s),
              runtime.shard_memory(s).current_bytes())
        << "shard " << s << " after flush";
    sum += runtime.shard_memory(s).current_bytes();
  }
  EXPECT_EQ(runtime.memory().current_bytes(), sum) << "roll-up after flush";
  EXPECT_GE(runtime.memory().peak_bytes(), runtime.memory().current_bytes());
  EXPECT_GT(runtime.memory().peak_bytes(), 0u);
}

// --- adaptive migration level ---

// Engines are created and RETIRED mid-run by adaptive re-planning: a
// retired engine must release everything it charged to the workload-wide
// tracker (pane bytes AND partition-map overhead), so the incremental
// accounting still equals a from-scratch walk of the LIVE engines after
// every migration, and peak_bytes stays a coherent point-in-time peak.
TEST(MemoryInvariant, AdaptiveMigrationReleasesRetiredEngines) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      "RETURN sector, COUNT(*), SUM(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 2 seconds SLIDE 2 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN sector, COUNT(*), MIN(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 4 seconds SLIDE 2 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN sector, COUNT(*), AVG(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 8 seconds SLIDE 2 seconds",
      catalog.get()));

  StockConfig config;
  config.seed = 97;
  config.num_companies = 5;
  config.num_sectors = 2;
  config.rate = 8;
  config.duration = 70;
  config.drift = 0.0;
  config.bursts.push_back({20, 45, 40.0, 1.0});  // split, then re-merge
  Stream stream = GenerateStockStream(catalog.get(), config);

  sharing::SharedEngineOptions options;
  options.adaptive.enabled = true;
  options.adaptive.observation_windows = 3;
  options.adaptive.min_windows_between_migrations = 4;
  options.adaptive.hysteresis = 1.2;
  auto engine =
      sharing::SharedWorkloadEngine::Create(catalog.get(), workload, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  sharing::SharedWorkloadEngine& e = *engine.value();

  size_t checks = 0;
  for (const Event& ev : stream.events()) {
    ASSERT_TRUE(e.Process(ev).ok());
    std::vector<ResultRow> rows = e.TakeResults();
    if (!rows.empty() || checks % 64 == 0) {
      EXPECT_EQ(e.RecomputeTrackedBytes(), e.memory().current_bytes())
          << "after event seq " << ev.seq << " (migrations so far: "
          << e.total_migrations() << ")";
    }
    ++checks;
  }
  ASSERT_TRUE(e.Flush().ok());
  EXPECT_GE(e.total_migrations(), 2u)
      << "test is vacuous unless engines were retired mid-run";
  EXPECT_EQ(e.RecomputeTrackedBytes(), e.memory().current_bytes())
      << "after flush";
  EXPECT_GE(e.memory().peak_bytes(), e.memory().current_bytes());
  // Workload-level stats stay coherent across retirements: the retired
  // engines' structural work is preserved, never double-counted into a
  // sum that shrinks when units are destroyed.
  const EngineStats& stats = e.stats();
  EXPECT_GT(stats.vertices_stored, 0u);
  EXPECT_GT(stats.edges_traversed, 0u);
  EXPECT_GE(stats.peak_bytes, e.memory().current_bytes());
}

TEST(MemoryInvariant, TumblingWindowPurgesWholesale) {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  QuerySpec spec = Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE [company] WITHIN 5 seconds "
      "SLIDE 5 seconds",
      catalog.get());

  StockConfig config;
  config.seed = 5;
  config.num_companies = 3;
  config.rate = 20;
  config.duration = 60;
  Stream stream = GenerateStockStream(catalog.get(), config);

  auto engine = MakeGreta(catalog.get(), spec);
  size_t mid_stream_bytes = 0;
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(engine->Process(e).ok());
    if (e.time == 30) mid_stream_bytes = engine->memory().current_bytes();
  }
  ASSERT_TRUE(engine->Flush().ok());
  // Purge keeps current usage bounded: the end-of-stream footprint must not
  // exceed a small multiple of the mid-stream footprint (panes expire).
  EXPECT_EQ(engine->RecomputeTrackedBytes(),
            engine->memory().current_bytes());
  ASSERT_GT(mid_stream_bytes, 0u);
  EXPECT_LT(engine->memory().current_bytes(), 4 * mid_stream_bytes);
}

}  // namespace
}  // namespace greta
