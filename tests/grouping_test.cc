// Tests for event trend grouping and equivalence predicates (Section 6):
// stream partitioning, GROUP-BY projection, and broadcast routing of event
// types lacking key attributes (Q3's accidents).

#include "gtest/gtest.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::ExpectMatchesOracle;
using testing::MakeGreta;
using testing::RunEngine;

std::unique_ptr<Catalog> GroupCatalog() {
  auto catalog = std::make_unique<Catalog>();
  catalog->DefineType("S", {{"company", Value::Kind::kInt},
                            {"sector", Value::Kind::kInt},
                            {"price", Value::Kind::kDouble}});
  catalog->DefineType("H", {{"sector", Value::Kind::kInt}});
  return catalog;
}

Event S(Catalog* c, Ts t, int64_t company, int64_t sector, double price) {
  return EventBuilder(c, "S", t)
      .Set("company", company)
      .Set("sector", sector)
      .Set("price", price)
      .Build();
}

TEST(GroupingTest, EquivalencePartitionsByCompany) {
  // S+ with [company]: trends never mix companies.
  auto catalog = GroupCatalog();
  auto spec = ParseQuery(
      "RETURN COUNT(*) PATTERN S+ WHERE [company]", catalog.get());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  Stream stream;
  stream.Append(S(catalog.get(), 1, 1, 0, 10));
  stream.Append(S(catalog.get(), 2, 2, 0, 10));
  stream.Append(S(catalog.get(), 3, 1, 0, 10));
  stream.Append(S(catalog.get(), 4, 2, 0, 10));
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), spec.value(), stream);
  // Per company: 2 events -> 3 trends each; no grouping attrs -> one row
  // with the total 6.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "6");
}

TEST(GroupingTest, GroupByProjectsPartitionKeys) {
  // GROUP-BY sector with equivalence [company, sector]: counts are computed
  // per company and summed per sector (the Q1 shape).
  auto catalog = GroupCatalog();
  auto spec = ParseQuery(
      "RETURN sector, COUNT(*) PATTERN S+ WHERE [company, sector] "
      "GROUP-BY sector",
      catalog.get());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  Stream stream;
  stream.Append(S(catalog.get(), 1, 1, 0, 10));  // sector 0, company 1
  stream.Append(S(catalog.get(), 2, 2, 0, 10));  // sector 0, company 2
  stream.Append(S(catalog.get(), 3, 1, 0, 10));  // sector 0, company 1
  stream.Append(S(catalog.get(), 4, 9, 5, 10));  // sector 5, company 9
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), spec.value(), stream);
  ASSERT_EQ(rows.size(), 2u);
  // Sector 0: company 1 has events {1,3} -> 3 trends; company 2 has {2} ->
  // 1 trend; total 4. Sector 5: 1 trend.
  EXPECT_EQ(rows[0].group[0].AsInt(), 0);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "4");
  EXPECT_EQ(rows[1].group[0].AsInt(), 5);
  EXPECT_EQ(rows[1].aggs.count.ToDecimal(), "1");
}

TEST(GroupingTest, EdgePredicateAppliesWithinPartition) {
  auto catalog = GroupCatalog();
  auto spec = ParseQuery(
      "RETURN COUNT(*) PATTERN S+ "
      "WHERE [company] AND S.price > NEXT(S).price",
      catalog.get());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  Stream stream;
  // Company 1: prices 10, 8 (down-trend), company 2: 5, 9 (no pair).
  stream.Append(S(catalog.get(), 1, 1, 0, 10));
  stream.Append(S(catalog.get(), 2, 2, 0, 5));
  stream.Append(S(catalog.get(), 3, 1, 0, 8));
  stream.Append(S(catalog.get(), 4, 2, 0, 9));
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), spec.value(), stream);
  // Company 1: (s1), (s3), (s1,s3) = 3; company 2: (s2), (s4) = 2.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "5");
}

TEST(GroupingTest, BroadcastTypeReachesMatchingPartitions) {
  // SEQ(NOT H, S+) with [company, sector]: H carries only the sector, so a
  // halt must invalidate every company partition of that sector — including
  // partitions created after the halt arrived (replay).
  auto catalog = GroupCatalog();
  auto spec = ParseQuery(
      "RETURN COUNT(*) PATTERN SEQ(NOT H, S+) WHERE [company, sector]",
      catalog.get());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  Stream stream;
  stream.Append(S(catalog.get(), 1, 1, 0, 10));
  stream.Append(
      EventBuilder(catalog.get(), "H", 2).Set("sector", int64_t{0}).Build());
  stream.Append(S(catalog.get(), 3, 1, 0, 10));  // Dead (after halt).
  stream.Append(S(catalog.get(), 4, 2, 0, 10));  // New partition, also dead.
  stream.Append(S(catalog.get(), 5, 3, 1, 10));  // Other sector: alive.
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), spec.value(), stream);
  // Survivors: (s1) in sector 0 company 1, (s5) in sector 1.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "2");
}

TEST(GroupingTest, MinMaxMergeAcrossPartitionsOfAGroup) {
  auto catalog = GroupCatalog();
  auto spec = ParseQuery(
      "RETURN sector, MIN(S.price), MAX(S.price), COUNT(S) "
      "PATTERN S+ WHERE [company, sector] GROUP-BY sector",
      catalog.get());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  Stream stream;
  stream.Append(S(catalog.get(), 1, 1, 0, 10));
  stream.Append(S(catalog.get(), 2, 2, 0, 99));
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), spec.value(), stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].aggs.min, 10.0);
  EXPECT_DOUBLE_EQ(rows[0].aggs.max, 99.0);
  EXPECT_EQ(rows[0].aggs.type_count.ToDecimal(), "2");
}

TEST(GroupingTest, UnknownGroupAttributeIsPlanError) {
  auto catalog = GroupCatalog();
  auto spec = ParseQuery("RETURN COUNT(*) PATTERN S+ GROUP-BY nothere",
                         catalog.get());
  ASSERT_TRUE(spec.ok());
  auto engine = GretaEngine::Create(catalog.get(), spec.value());
  EXPECT_FALSE(engine.ok());
}

}  // namespace
}  // namespace greta
