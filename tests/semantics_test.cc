// Tests for event selection semantics (Section 9, Table 1): the graph
// establishes fewer edges under skip-till-next-match and contiguous, and
// GRETA agrees with the two-step oracle under every semantics.

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::CountQuery;
using testing::MakeGreta;
using testing::MakeOracle;
using testing::PaperCatalog;
using testing::RunEngine;

Stream AStream(Catalog* catalog, int n) {
  Stream stream;
  for (int i = 1; i <= n; ++i) {
    stream.Append(EventBuilder(catalog, "A", i)
                      .Set("attr", static_cast<double>(i))
                      .Build());
  }
  return stream;
}

std::string CountUnder(const Catalog* catalog, const QuerySpec& spec,
                       const Stream& stream, Semantics semantics) {
  EngineOptions options;
  options.semantics = semantics;
  auto greta = MakeGreta(catalog, spec.Clone(), options);
  std::vector<ResultRow> greta_rows = RunEngine(greta.get(), stream);

  TwoStepOptions oracle_options;
  oracle_options.semantics = semantics;
  auto oracle = MakeOracle(catalog, spec.Clone(), oracle_options);
  std::vector<ResultRow> oracle_rows = RunEngine(oracle.get(), stream);

  std::string diff;
  EXPECT_TRUE(
      RowsEquivalent(greta_rows, oracle_rows, greta->agg_plan(), &diff))
      << diff;
  if (greta_rows.empty()) return "0";
  return greta_rows[0].aggs.count.ToDecimal();
}

TEST(SemanticsTest, Table1TrendCountsOrdered) {
  // Skip-till-any-match detects all trends (exponential); the restricted
  // semantics detect subsets (Table 1). Over 6 a's with A+:
  //  - any: 2^6 - 1 = 63
  //  - skip-till-next: each event extends only the next compatible event:
  //    trends are the contiguous suffix-runs: 6 prefixes of the single
  //    chain a1..a6 = 6... (each ai starts one chain that greedily extends)
  //  - contiguous: runs of consecutive events, also polynomial.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  Stream stream = AStream(catalog.get(), 6);

  std::string any = CountUnder(catalog.get(), spec, stream,
                               Semantics::kSkipTillAnyMatch);
  std::string next = CountUnder(catalog.get(), spec, stream,
                                Semantics::kSkipTillNextMatch);
  std::string contiguous =
      CountUnder(catalog.get(), spec, stream, Semantics::kContiguous);

  EXPECT_EQ(any, "63");
  // Exponential >= polynomial subsets.
  EXPECT_GE(std::stoll(any), std::stoll(next));
  EXPECT_GE(std::stoll(next), std::stoll(contiguous));
  EXPECT_GT(std::stoll(contiguous), 0);
}

TEST(SemanticsTest, SkipTillAnyFindsLongDownTrendOfSection2) {
  // Section 2's example: prices 10,2,9,8,7,1,6,5,4,3 — skip-till-any-match
  // is the only semantics detecting the 8-element down-trend
  // (10,9,8,7,6,5,4,3). We check that a down-trend of length 8 exists by
  // counting trends of A+ with decreasing attr and minimal length 8
  // (Section 9 unrolling).
  auto catalog = PaperCatalog();
  double prices[] = {10, 2, 9, 8, 7, 1, 6, 5, 4, 3};
  Stream stream;
  for (int i = 0; i < 10; ++i) {
    stream.Append(EventBuilder(catalog.get(), "A", i + 1)
                      .Set("attr", prices[i])
                      .Build());
  }
  auto unrolled = UnrollMinLength(*Pattern::Plus(Pattern::Atom(0)), 8);
  ASSERT_TRUE(unrolled.ok());
  QuerySpec spec = CountQuery(std::move(unrolled).value());
  spec.where.push_back(Expr::Binary(ExprOp::kGt, Expr::Attr(0, 0),
                                    Expr::NextAttr(0, 0)));

  std::string any = CountUnder(catalog.get(), spec, stream,
                               Semantics::kSkipTillAnyMatch);
  EXPECT_EQ(any, "1");  // Exactly the paper's 8-element down-trend.
  std::string contiguous =
      CountUnder(catalog.get(), spec, stream, Semantics::kContiguous);
  EXPECT_EQ(contiguous, "0");  // Local fluctuations break contiguity.
}

TEST(SemanticsTest, ContiguousRequiresConsecutiveEvents) {
  // A+ with a gap event of another relevant type in between.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                                           Pattern::Atom(1)));
  Stream stream;
  stream.Append(
      EventBuilder(catalog.get(), "A", 1).Set("attr", 1.0).Build());
  stream.Append(
      EventBuilder(catalog.get(), "A", 2).Set("attr", 2.0).Build());
  stream.Append(
      EventBuilder(catalog.get(), "B", 3).Set("attr", 3.0).Build());
  // Contiguous: (a2, b3) and (a1, a2, b3) — a1 alone cannot jump to b3.
  std::string contiguous =
      CountUnder(catalog.get(), spec, stream, Semantics::kContiguous);
  EXPECT_EQ(contiguous, "2");
  std::string any = CountUnder(catalog.get(), spec, stream,
                               Semantics::kSkipTillAnyMatch);
  EXPECT_EQ(any, "3");  // Plus (a1, b3).
}

TEST(SemanticsTest, SkipTillNextMatchesOracleOnMixedStream) {
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Seq(
      Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1))));
  Stream stream = testing::Figure6Stream(catalog.get());
  CountUnder(catalog.get(), spec, stream, Semantics::kSkipTillNextMatch);
  CountUnder(catalog.get(), spec, stream, Semantics::kContiguous);
}

}  // namespace
}  // namespace greta
