#ifndef GRETA_TESTS_TEST_UTIL_H_
#define GRETA_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/sase.h"
#include "common/catalog.h"
#include "common/stream.h"
#include "core/engine.h"
#include "gtest/gtest.h"

namespace greta::testing {

/// Catalog with the paper's running-example types A..E, each carrying one
/// numeric attribute `attr` (Figures 6, 12, 13).
inline std::unique_ptr<Catalog> PaperCatalog() {
  auto catalog = std::make_unique<Catalog>();
  for (const char* name : {"A", "B", "C", "D", "E"}) {
    catalog->DefineType(name,
                        {{"attr", Value::Kind::kDouble}});
  }
  return catalog;
}

/// Builds the stream of Figure 6: I = {a1, b2, c2, a3, e3, a4, c5, d6, b7,
/// a8, b9} (letter = type, number = timestamp). Attribute values default to
/// the timestamp unless overridden by attr_of.
inline Stream Figure6Stream(Catalog* catalog) {
  Stream stream;
  auto add = [&](const char* type, Ts time) {
    stream.Append(EventBuilder(catalog, type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  };
  add("A", 1);
  add("B", 2);
  add("C", 2);
  add("A", 3);
  add("E", 3);
  add("A", 4);
  add("C", 5);
  add("D", 6);
  add("B", 7);
  add("A", 8);
  add("B", 9);
  return stream;
}

/// The stream of Figure 12: I = {a1, b2, a3, a4, b7} with a1.attr=5,
/// a3.attr=6, a4.attr=4.
inline Stream Figure12Stream(Catalog* catalog) {
  Stream stream;
  auto add = [&](const char* type, Ts time, double attr) {
    stream.Append(
        EventBuilder(catalog, type, time).Set("attr", attr).Build());
  };
  add("A", 1, 5.0);
  add("B", 2, 2.0);
  add("A", 3, 6.0);
  add("A", 4, 4.0);
  add("B", 7, 7.0);
  return stream;
}

/// Runs a full stream through an engine and returns the emitted rows.
inline std::vector<ResultRow> RunEngine(EngineInterface* engine,
                                        const Stream& stream) {
  for (const Event& e : stream.events()) {
    Status s = engine->Process(e);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  Status s = engine->Flush();
  EXPECT_TRUE(s.ok()) << s.ToString();
  return engine->TakeResults();
}

/// Builds a GRETA engine or fails the test.
inline std::unique_ptr<GretaEngine> MakeGreta(
    const Catalog* catalog, const QuerySpec& spec,
    const EngineOptions& options = {}) {
  auto engine = GretaEngine::Create(catalog, spec, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// Builds a SASE (oracle) engine or fails the test.
inline std::unique_ptr<SaseEngine> MakeOracle(
    const Catalog* catalog, const QuerySpec& spec,
    const TwoStepOptions& options = {}) {
  auto engine = SaseEngine::Create(catalog, spec, options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

/// COUNT(*) of the single expected row; "-" when no row was produced.
inline std::string SingleCount(const std::vector<ResultRow>& rows) {
  if (rows.size() != 1) return "rows=" + std::to_string(rows.size());
  return rows[0].aggs.count.ToDecimal();
}

/// Query spec with COUNT(*) over the given pattern, no predicates,
/// unbounded window.
inline QuerySpec CountQuery(PatternPtr pattern) {
  QuerySpec spec;
  spec.pattern = std::move(pattern);
  spec.aggs.push_back(AggSpec{AggKind::kCountStar, kInvalidType,
                              kInvalidAttr, "COUNT(*)"});
  return spec;
}

/// Compares GRETA against the SASE oracle on a query and stream; returns
/// the GRETA rows for further inspection.
inline std::vector<ResultRow> ExpectMatchesOracle(const Catalog* catalog,
                                                  const QuerySpec& spec,
                                                  const Stream& stream) {
  auto greta = MakeGreta(catalog, spec.Clone());
  auto oracle = MakeOracle(catalog, spec.Clone());
  std::vector<ResultRow> greta_rows = RunEngine(greta.get(), stream);
  std::vector<ResultRow> oracle_rows = RunEngine(oracle.get(), stream);
  std::string diff;
  EXPECT_TRUE(RowsEquivalent(greta_rows, oracle_rows, greta->agg_plan(),
                             &diff))
      << "GRETA vs oracle: " << diff;
  return greta_rows;
}

}  // namespace greta::testing

#endif  // GRETA_TESTS_TEST_UTIL_H_
