// Tests for nested negation (Section 5): the three placement cases, the
// worked Examples 2-5 (Figures 6(d), 7, 8), event pruning, and consistency
// with the two-step oracle.

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::CountQuery;
using testing::ExpectMatchesOracle;
using testing::Figure6Stream;
using testing::MakeGreta;
using testing::PaperCatalog;
using testing::RunEngine;
using testing::SingleCount;

// (SEQ(A+, NOT SEQ(C, NOT E, D), B))+ — the nested pattern of Example 2.
PatternPtr Example2Pattern() {
  return Pattern::Plus(Pattern::Seq(
      Pattern::Plus(Pattern::Atom(0)),
      Pattern::Not(Pattern::Seq(Pattern::Atom(2),
                                Pattern::Not(Pattern::Atom(4)),
                                Pattern::Atom(3))),
      Pattern::Atom(1)));
}

TEST(NegationTest, Figure6dNestedNegation) {
  // Example 4 on Figure 6(d): e3 invalidates c2 within the (C, D) graph, so
  // (c5, d6) is the only negative match; it invalidates a1, a3, a4 for b's
  // after d6. b7 has no valid predecessors and is not inserted; b9 connects
  // only to a8. Final count: b2 (1) + b9 (a8 = 12) = 13.
  auto catalog = PaperCatalog();
  Stream stream = Figure6Stream(catalog.get());
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(Example2Pattern()),
                          stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "13");
}

TEST(NegationTest, WithoutNegativeMatchesBehavesLikePositive) {
  // Drop c5/d6 from the stream: SEQ(C, D) never matches, e3 only prunes the
  // (C, D) graph, and the count must equal the positive pattern's.
  auto catalog = PaperCatalog();
  Stream stream;
  auto add = [&](const char* type, Ts time) {
    stream.Append(EventBuilder(catalog.get(), type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  };
  add("A", 1);
  add("B", 2);
  add("C", 2);
  add("A", 3);
  add("E", 3);
  add("A", 4);
  add("B", 7);
  add("A", 8);
  add("B", 9);

  std::vector<ResultRow> with_negation =
      ExpectMatchesOracle(catalog.get(), CountQuery(Example2Pattern()),
                          stream);
  QuerySpec positive = CountQuery(Pattern::Plus(Pattern::Seq(
      Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1))));
  auto engine = MakeGreta(catalog.get(), std::move(positive));
  std::vector<ResultRow> rows = RunEngine(engine.get(), stream);
  ASSERT_EQ(with_negation.size(), 1u);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(with_negation[0].aggs.count.ToDecimal(),
            rows[0].aggs.count.ToDecimal());
}

TEST(NegationTest, Figure8aTrailingNegation) {
  // SEQ(A+, NOT E) on the Figure 6 stream: the trend e3 (start = 3)
  // invalidates all A events strictly before time 3 (Definition 5): a1 is
  // dead, a3 stays (same timestamp). Valid A+ trends over {a3, a4, a8} with
  // a1 unable to connect onward: a3=2 (a1->a3 still allowed: e3 does not
  // separate them), a4=1+a3=3, a8=1+a3+a4=6... with a1->a3 allowed a3
  // counts (a3) and (a1,a3): 2. Final = a3+a4+a8 = 11.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Not(Pattern::Atom(4)));
  Stream stream = Figure6Stream(catalog.get());
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "11");
}

TEST(NegationTest, Figure8bLeadingNegation) {
  // SEQ(NOT E, A+) on the Figure 6 stream: e3 invalidates all following
  // a's (a4, a8 are never inserted; Figure 8(b)). Remaining trends over
  // {a1, a3}: (a1), (a3), (a1,a3) -> 3.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(Pattern::Not(Pattern::Atom(4)),
                              Pattern::Plus(Pattern::Atom(0)));
  Stream stream = Figure6Stream(catalog.get());
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "3");
}

TEST(NegationTest, Case1MidSequence) {
  // SEQ(A+, NOT C, B): c5 invalidates a's before it for b's after it.
  // Stream: a1 a3 c5 a6 b7 -> A->B connections: a6->b7 only (a1, a3
  // blocked); A+ internal edges unaffected. Trends: (a6,b7), (a1,a6,b7)?
  // a1 may still connect to a6 (A->A edge), then a6->b7: the NOT C rule
  // only forbids the A->B adjacency crossing the C match.
  auto catalog = PaperCatalog();
  Stream stream;
  auto add = [&](const char* type, Ts time) {
    stream.Append(EventBuilder(catalog.get(), type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  };
  add("A", 1);
  add("A", 3);
  add("C", 5);
  add("A", 6);
  add("B", 7);
  PatternPtr p = Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Not(Pattern::Atom(2)),
                              Pattern::Atom(1));
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  // Trends ending at b7 through a6: a6 carries (a6), (a1,a6), (a3,a6),
  // (a1,a3,a6) = 4 trends.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "4");
}

TEST(NegationTest, NegativeMatchAfterFollowingEventDoesNotApply) {
  // SEQ(A+, NOT C, B) with order a1 b2 c3: the C match arrives after b2,
  // so (a1, b2) is unaffected.
  auto catalog = PaperCatalog();
  Stream stream;
  auto add = [&](const char* type, Ts time) {
    stream.Append(EventBuilder(catalog.get(), type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  };
  add("A", 1);
  add("B", 2);
  add("C", 3);
  PatternPtr p = Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Not(Pattern::Atom(2)),
                              Pattern::Atom(1));
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "1");
}

TEST(NegationTest, SameTimestampNegativeMatchIsNotStrictlyBetween) {
  // Definition 5 requires the previous event strictly before the trend
  // start and the following event strictly after the trend end. With
  // a1 c1 b1 all at distinct positions but c's trend at time 1 == a1's and
  // b1's time, nothing is invalidated.
  auto catalog = PaperCatalog();
  Stream stream;
  auto add = [&](const char* type) {
    stream.Append(EventBuilder(catalog.get(), type, 1)
                      .Set("attr", 1.0)
                      .Build());
  };
  add("A");
  add("C");
  add("B");
  PatternPtr p = Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Not(Pattern::Atom(2)),
                              Pattern::Atom(1));
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  // a1 and b1 share a timestamp, so they cannot even be adjacent (strict
  // trend order): no trends at all.
  EXPECT_TRUE(rows.empty());
}

TEST(NegationTest, InvalidEventPruningTombstonesDeadVertices) {
  // With a single window and SEQ(A, NOT C, B) (A's only successor is B),
  // invalidated A vertices are tombstoned (Theorem 5.1).
  auto catalog = PaperCatalog();
  Stream stream;
  auto add = [&](const char* type, Ts time) {
    stream.Append(EventBuilder(catalog.get(), type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  };
  add("A", 1);
  add("C", 2);
  add("B", 3);  // Forbidden: a1 < c2 < b3.
  add("A", 4);
  add("B", 5);  // (a4, b5) fine.
  PatternPtr p = Pattern::Seq(Pattern::Atom(0),
                              Pattern::Not(Pattern::Atom(2)),
                              Pattern::Atom(1));
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  ASSERT_EQ(rows.size(), 1u);
  // (a1,b3) killed; (a1,b5) killed (c2 between 1 and 5); (a4,b3)? b3 < a4.
  // (a4,b5) survives.
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "1");
}

TEST(NegationTest, MultipleNegativeMatchesRaiseBarrierMonotonically) {
  // Two C matches: later one with a later start invalidates more.
  auto catalog = PaperCatalog();
  Stream stream;
  auto add = [&](const char* type, Ts time) {
    stream.Append(EventBuilder(catalog.get(), type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  };
  add("A", 1);
  add("C", 2);
  add("A", 3);
  add("C", 4);
  add("A", 5);
  add("B", 6);
  PatternPtr p = Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Not(Pattern::Atom(2)),
                              Pattern::Atom(1));
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  // Only a5 may connect to b6 (a1 < c2/c4, a3 < c4). Trends ending at b6
  // through a5: (a5), (a1,a5), (a3,a5), (a1,a3,a5) -> 4.
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "4");
}

TEST(NegationTest, LeadingAndTrailingNegationTogether) {
  auto catalog = PaperCatalog();
  Stream stream;
  auto add = [&](const char* type, Ts time) {
    stream.Append(EventBuilder(catalog.get(), type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  };
  add("A", 1);
  add("C", 2);  // Kills all A's after 2 (leading NOT C).
  add("A", 3);
  add("E", 4);  // Kills A trends ending before 4 (trailing NOT E).
  add("A", 5);
  PatternPtr p = Pattern::Seq(Pattern::Not(Pattern::Atom(2)),
                              Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Not(Pattern::Atom(4)));
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  // a3/a5 never inserted (after c2); trend (a1) ends at 1 < 4 and is killed
  // by the E filter: nothing survives.
  EXPECT_TRUE(rows.empty());
}

}  // namespace
}  // namespace greta
