// Tests for the pattern AST: Definition-1 structure, Section-2 composition
// rules, Section-9 sugar expansion and minimal-length unrolling.

#include "query/pattern.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::PaperCatalog;

TEST(PatternTest, FactoriesAndStructure) {
  auto catalog = PaperCatalog();
  TypeId a = catalog->FindType("A");
  TypeId b = catalog->FindType("B");
  PatternPtr p = Pattern::Plus(
      Pattern::Seq(Pattern::Plus(Pattern::Atom(a)), Pattern::Atom(b)));
  EXPECT_EQ(p->op(), PatternOp::kPlus);
  EXPECT_EQ(p->ToString(*catalog), "(SEQ((A)+, B))+");
  EXPECT_TRUE(p->IsPositive());
  EXPECT_TRUE(p->HasKleene());
  // Size (Definition 1): 2 event types + 3 operators.
  EXPECT_EQ(p->Size(), 5);
}

TEST(PatternTest, SeqFlattensNestedSequences) {
  auto catalog = PaperCatalog();
  PatternPtr inner = Pattern::Seq(Pattern::Atom(0), Pattern::Atom(1));
  PatternPtr p = Pattern::Seq(std::move(inner), Pattern::Atom(2));
  EXPECT_EQ(p->children().size(), 3u);
  EXPECT_EQ(p->ToString(*catalog), "SEQ(A, B, C)");
}

TEST(PatternTest, CloneAndEquals) {
  PatternPtr p = Pattern::Plus(
      Pattern::Seq(Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1)));
  PatternPtr q = p->Clone();
  EXPECT_TRUE(p->Equals(*q));
  PatternPtr other = Pattern::Plus(Pattern::Atom(0));
  EXPECT_FALSE(p->Equals(*other));
}

TEST(PatternTest, CollectAndRequiredTypes) {
  // SEQ(NOT C, A+, B?): required = {A}; positive possible = {A, B}.
  PatternPtr p = Pattern::Seq(
      Pattern::Not(Pattern::Atom(2)), Pattern::Plus(Pattern::Atom(0)),
      Pattern::Opt(Pattern::Atom(1)));
  EXPECT_EQ(p->CollectTypes(), (std::vector<TypeId>{0, 1, 2}));
  EXPECT_EQ(p->CollectTypes(/*include_negated=*/false),
            (std::vector<TypeId>{0, 1}));
  EXPECT_EQ(p->RequiredTypes(), (std::vector<TypeId>{0}));
}

TEST(PatternValidationTest, AcceptsPaperPatterns) {
  // Q1: S+; Q2: SEQ(S, M+, E); Q3: SEQ(NOT A, P+); Example 2's nested form.
  EXPECT_TRUE(ValidatePattern(*Pattern::Plus(Pattern::Atom(0))).ok());
  EXPECT_TRUE(ValidatePattern(*Pattern::Seq(Pattern::Atom(0),
                                            Pattern::Plus(Pattern::Atom(1)),
                                            Pattern::Atom(2)))
                  .ok());
  EXPECT_TRUE(ValidatePattern(*Pattern::Seq(Pattern::Not(Pattern::Atom(0)),
                                            Pattern::Plus(Pattern::Atom(1))))
                  .ok());
  PatternPtr nested = Pattern::Plus(Pattern::Seq(
      Pattern::Plus(Pattern::Atom(0)),
      Pattern::Not(Pattern::Seq(Pattern::Atom(2),
                                Pattern::Not(Pattern::Atom(4)),
                                Pattern::Atom(3))),
      Pattern::Atom(1)));
  EXPECT_TRUE(ValidatePattern(*nested).ok());
}

TEST(PatternValidationTest, RejectsOutermostNegation) {
  Status s = ValidatePattern(*Pattern::Not(Pattern::Atom(0)));
  EXPECT_FALSE(s.ok());
}

TEST(PatternValidationTest, RejectsKleeneOverNegation) {
  // (NOT P)+ == NOT P (Section 2).
  PatternPtr p = Pattern::Seq(Pattern::Atom(0),
                              Pattern::Plus(Pattern::Not(Pattern::Atom(1))));
  EXPECT_FALSE(ValidatePattern(*p).ok());
}

TEST(PatternValidationTest, RejectsConsecutiveNegations) {
  // SEQ(NOT Pi, NOT Pj) == NOT SEQ(Pi, Pj) (Section 2).
  PatternPtr p = Pattern::Seq(Pattern::Atom(0), Pattern::Not(Pattern::Atom(1)),
                              Pattern::Not(Pattern::Atom(2)), Pattern::Atom(3));
  EXPECT_FALSE(ValidatePattern(*p).ok());
}

TEST(PatternValidationTest, RejectsNegationOfKleene) {
  // NOT (P+) == NOT P (Section 2): negation applies to a type or sequence.
  PatternPtr p = Pattern::Seq(Pattern::Atom(0),
                              Pattern::Not(Pattern::Plus(Pattern::Atom(1))));
  EXPECT_FALSE(ValidatePattern(*p).ok());
}

TEST(SugarExpansionTest, StarBecomesPlusOrAbsent) {
  // SEQ(A*, B) == SEQ(A+, B) | B (Section 9).
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(Pattern::Star(Pattern::Atom(0)),
                              Pattern::Atom(1));
  auto alts = ExpandSugar(*p);
  ASSERT_TRUE(alts.ok());
  ASSERT_EQ(alts.value().size(), 2u);
  EXPECT_EQ(alts.value()[0]->ToString(*catalog), "SEQ((A)+, B)");
  EXPECT_EQ(alts.value()[1]->ToString(*catalog), "B");
}

TEST(SugarExpansionTest, OptionalBecomesPresentOrAbsent) {
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(Pattern::Opt(Pattern::Atom(0)),
                              Pattern::Atom(1));
  auto alts = ExpandSugar(*p);
  ASSERT_TRUE(alts.ok());
  ASSERT_EQ(alts.value().size(), 2u);
  EXPECT_EQ(alts.value()[0]->ToString(*catalog), "SEQ(A, B)");
  EXPECT_EQ(alts.value()[1]->ToString(*catalog), "B");
}

TEST(SugarExpansionTest, DisjunctionUnions) {
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Or(Pattern::Plus(Pattern::Atom(0)),
                             Pattern::Atom(1));
  auto alts = ExpandSugar(*p);
  ASSERT_TRUE(alts.ok());
  ASSERT_EQ(alts.value().size(), 2u);
}

TEST(SugarExpansionTest, DeduplicatesEqualAlternatives) {
  // SEQ(A?, B) | B: the bare-B alternative appears twice, kept once.
  PatternPtr p = Pattern::Or(
      Pattern::Seq(Pattern::Opt(Pattern::Atom(0)), Pattern::Atom(1)),
      Pattern::Atom(1));
  auto alts = ExpandSugar(*p);
  ASSERT_TRUE(alts.ok());
  EXPECT_EQ(alts.value().size(), 2u);
}

TEST(SugarExpansionTest, RejectsEmptyOnlyPattern) {
  // A* alone can match the empty trend; the only alternatives are A+ and
  // empty, and empty is dropped (Lemma 1) — A* == A+ effectively.
  auto alts = ExpandSugar(*Pattern::Star(Pattern::Atom(0)));
  ASSERT_TRUE(alts.ok());
  EXPECT_EQ(alts.value().size(), 1u);
  // But a pattern that is *only* empty is an error.
  PatternPtr p = Pattern::Opt(Pattern::Star(Pattern::Atom(0)));
  auto alts2 = ExpandSugar(*p);
  ASSERT_TRUE(alts2.ok());  // A+ survives.
  EXPECT_EQ(alts2.value().size(), 1u);
}

TEST(UnrollMinLengthTest, UnrollsKleenePlus) {
  // A+ with min length 3 -> SEQ(A, A, A+) (Section 9).
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Plus(Pattern::Atom(0));
  auto unrolled = UnrollMinLength(*p, 3);
  ASSERT_TRUE(unrolled.ok());
  EXPECT_EQ(unrolled.value()->ToString(*catalog), "SEQ(A, A, (A)+)");
  auto same = UnrollMinLength(*p, 1);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same.value()->Equals(*p));
  EXPECT_FALSE(UnrollMinLength(*p, 0).ok());
  EXPECT_FALSE(UnrollMinLength(*Pattern::Atom(0), 2).ok());
}

}  // namespace
}  // namespace greta
