// End-to-end telemetry over the sharded adaptive runtime: a bursty stock
// workload on 2 shards with aggressive adaptation must leave the default
// registry holding per-shard queue series, the watermark-lag gauge, and
// per-shard migration counters that SUM to ShardedRuntime::TotalMigrations
// — and the trace ring must carry the planner's decision/migration
// lifecycle. Also covers the ShardQueueStats accessor (satellite of the
// SPSC depth/stall instrumentation) and the registry-disabled path (no
// series registered, identical rows).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/parser.h"
#include "runtime/sharded_runtime.h"
#include "telemetry/exporters.h"
#include "telemetry/telemetry.h"
#include "tests/test_util.h"
#include "workload/stock.h"

namespace greta {
namespace {

using runtime::ShardedOptions;
using runtime::ShardedRuntime;

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

// Window-diverse partial-sharing cluster under a bursty stream: the same
// shape the adaptive-sharing tests use to force mid-run re-planning.
std::vector<QuerySpec> AdaptiveWorkload(Catalog* catalog) {
  const char* texts[] = {
      "RETURN sector, COUNT(*), SUM(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 2 seconds SLIDE 2 seconds",
      "RETURN sector, COUNT(*), MIN(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 4 seconds SLIDE 2 seconds",
      "RETURN sector, COUNT(*), AVG(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 8 seconds SLIDE 2 seconds",
  };
  std::vector<QuerySpec> workload;
  for (const char* text : texts) workload.push_back(Parse(text, catalog));
  return workload;
}

Stream BurstyStream(Catalog* catalog) {
  StockConfig config;
  config.seed = 97;
  config.num_companies = 5;
  config.num_sectors = 2;
  config.rate = 8;
  config.duration = 60;
  config.drift = 0.0;
  config.bursts.push_back({20, 40, 40.0, 1.0});
  return GenerateStockStream(catalog, config);
}

std::unique_ptr<ShardedRuntime> MakeAdaptiveRuntime(
    const Catalog* catalog, const std::vector<QuerySpec>& workload,
    size_t num_shards) {
  ShardedOptions options;
  options.num_shards = num_shards;
  options.batch_size = 32;
  options.heartbeat_events = 64;
  options.workload.adaptive.enabled = true;
  options.workload.adaptive.observation_windows = 3;
  options.workload.adaptive.min_windows_between_migrations = 4;
  options.workload.adaptive.hysteresis = 1.2;
  auto rt = ShardedRuntime::Create(catalog, workload, options);
  EXPECT_TRUE(rt.ok()) << rt.status().ToString();
  return std::move(rt).value();
}

std::vector<std::vector<ResultRow>> RunAll(ShardedRuntime* rt,
                                           const Stream& stream) {
  for (const Event& e : stream.events()) {
    Status s = rt->Process(e);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_TRUE(rt->Flush().ok());
  std::vector<std::vector<ResultRow>> out(rt->num_queries());
  for (size_t q = 0; q < out.size(); ++q) out[q] = rt->TakeResults(q);
  return out;
}

uint64_t ScrapedCounter(telemetry::MetricRegistry& reg,
                        const std::string& name) {
  for (const auto& c : reg.ScrapeCounters()) {
    if (c.name == name) return c.value;
  }
  return 0;
}

bool HasGauge(telemetry::MetricRegistry& reg, const std::string& name) {
  for (const auto& g : reg.ScrapeGauges()) {
    if (g.name == name) return true;
  }
  return false;
}

#if GRETA_TELEMETRY

TEST(TelemetryRuntime, ShardedAdaptiveRunPopulatesAllLayers) {
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();
  reg.Reset();
  reg.set_enabled(true);

  Catalog catalog;
  RegisterStockTypes(&catalog);
  std::vector<QuerySpec> workload = AdaptiveWorkload(&catalog);
  Stream stream = BurstyStream(&catalog);

  constexpr size_t kShards = 2;
  auto rt = MakeAdaptiveRuntime(&catalog, workload, kShards);
  std::vector<std::vector<ResultRow>> rows = RunAll(rt.get(), stream);
  for (size_t q = 0; q < rows.size(); ++q) {
    EXPECT_FALSE(rows[q].empty()) << "query " << q;
  }

  // --- core layer: routing counters cover the delivered stream. Every
  // event lands on exactly one shard, but dedicated-mode clusters run one
  // engine per query and a migration handover dual-delivers, so the shared
  // counter is a LOWER-bounded multiple of the stream size.
  EXPECT_GE(ScrapedCounter(reg, "greta_core_events_routed_total"),
            stream.size());
  EXPECT_GT(ScrapedCounter(reg, "greta_core_windows_closed_total"), 0u);
  EXPECT_GT(ScrapedCounter(reg, "greta_core_vertices_created_total"), 0u);
  bool saw_emit_hist = false;
  for (const auto& h : reg.ScrapeHistograms()) {
    if (h.name == "greta_core_window_emit_ns") {
      saw_emit_hist = h.snap.count > 0;
    }
  }
  EXPECT_TRUE(saw_emit_hist);

  // --- sharing layer: per-shard migration counters sum to the runtime's
  // quiescent roll-up, and every shard exports its cluster mode + q_hat.
  size_t migrations_from_series = 0;
  for (size_t s = 0; s < kShards; ++s) {
    migrations_from_series += ScrapedCounter(
        reg,
        telemetry::Labeled("greta_sharing_migrations_total", "shard", s));
    EXPECT_TRUE(HasGauge(reg, telemetry::Labeled("greta_sharing_cluster_mode",
                                                 "shard", s, "cluster", 0)))
        << "shard " << s;
    EXPECT_TRUE(HasGauge(reg, telemetry::Labeled("greta_sharing_q_hat",
                                                 "shard", s, "cluster", 0)))
        << "shard " << s;
  }
  EXPECT_EQ(migrations_from_series, rt->TotalMigrations());
  // The bursty workload is tuned to actually migrate (same shape as the
  // adaptive-sharing tests); without at least one switch the sharing
  // series above would be vacuous.
  EXPECT_GT(rt->TotalMigrations(), 0u);

  // Cross-check against the per-shard adaptation states.
  size_t migrations_from_states = 0;
  for (size_t s = 0; s < kShards; ++s) {
    for (const sharing::AdaptationStats& st : rt->ShardAdaptationStates(s)) {
      migrations_from_states += st.migrations;
    }
  }
  EXPECT_EQ(migrations_from_series, migrations_from_states);

  // --- runtime layer: per-shard queue series and the lag/hold-back gauges.
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_TRUE(HasGauge(reg, telemetry::Labeled(
                                  "greta_runtime_queue_depth_hwm", "shard",
                                  s)))
        << "shard " << s;
    bool saw_batch_hist = false;
    for (const auto& h : reg.ScrapeHistograms()) {
      if (h.name ==
          telemetry::Labeled("greta_runtime_batch_events", "shard", s)) {
        saw_batch_hist = h.snap.count > 0;
      }
    }
    EXPECT_TRUE(saw_batch_hist) << "shard " << s;
  }
  EXPECT_TRUE(HasGauge(reg, "greta_runtime_watermark_lag"));
  EXPECT_TRUE(HasGauge(reg, "greta_runtime_merger_pending_windows"));

  // --- ShardQueueStats accessor mirrors the SPSC-internal counters.
  for (size_t s = 0; s < kShards; ++s) {
    ShardedRuntime::ShardQueueStats qs = rt->shard_queue_stats(s);
    EXPECT_GT(qs.capacity, 0u) << "shard " << s;
    EXPECT_GE(qs.depth_high_watermark, 1u) << "shard " << s;
    EXPECT_LE(qs.depth_high_watermark, qs.capacity) << "shard " << s;
  }

  // --- lifecycle trace: planner decisions and the migration handshake.
  size_t decisions = 0, starts = 0, finishes = 0, closes = 0, watermarks = 0;
  for (const telemetry::TraceEvent& e : reg.trace().Snapshot()) {
    switch (e.kind) {
      case telemetry::TraceKind::kPlanDecision: ++decisions; break;
      case telemetry::TraceKind::kMigrationStart: ++starts; break;
      case telemetry::TraceKind::kMigrationFinish: ++finishes; break;
      case telemetry::TraceKind::kWindowClose: ++closes; break;
      case telemetry::TraceKind::kWatermarkAdvance: ++watermarks; break;
      default: break;
    }
  }
  EXPECT_GT(decisions, 0u);
  EXPECT_GT(starts + finishes, 0u);
  EXPECT_GT(closes, 0u);
  EXPECT_GT(watermarks, 0u);

  // --- exporters over the live registry.
  std::string prom = telemetry::ExportPrometheus(reg);
  EXPECT_NE(prom.find("greta_core_events_routed_total"), std::string::npos);
  EXPECT_NE(prom.find("greta_sharing_migrations_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("greta_runtime_queue_depth_hwm{shard=\"1\"}"),
            std::string::npos);
  std::string json = telemetry::ExportJson(reg, /*include_trace=*/true);
  EXPECT_NE(json.find("greta_runtime_watermark_lag"), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"plan_decision\""), std::string::npos);

  reg.Reset();
}

TEST(TelemetryRuntime, DisabledRegistryRegistersNothingAndRowsMatch) {
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();

  Catalog catalog;
  RegisterStockTypes(&catalog);
  std::vector<QuerySpec> workload = AdaptiveWorkload(&catalog);
  Stream stream = BurstyStream(&catalog);

  reg.Reset();
  reg.set_enabled(true);
  auto on_rt = MakeAdaptiveRuntime(&catalog, workload, 2);
  std::vector<std::vector<ResultRow>> on_rows = RunAll(on_rt.get(), stream);

  reg.Reset();
  reg.set_enabled(false);
  auto off_rt = MakeAdaptiveRuntime(&catalog, workload, 2);
  std::vector<std::vector<ResultRow>> off_rows = RunAll(off_rt.get(), stream);

  // Disarmed: engines cached null pointers, so nothing moved. (Names
  // registered by the armed run survive Reset by design — their VALUES
  // must all be zero.)
  for (const auto& c : reg.ScrapeCounters()) {
    EXPECT_EQ(c.value, 0u) << c.name;
  }
  EXPECT_TRUE(reg.trace().Snapshot().empty());

  // Telemetry must never change results: identical row streams per query.
  ASSERT_EQ(on_rows.size(), off_rows.size());
  for (size_t q = 0; q < on_rows.size(); ++q) {
    ASSERT_EQ(on_rows[q].size(), off_rows[q].size()) << "query " << q;
    for (size_t i = 0; i < on_rows[q].size(); ++i) {
      EXPECT_EQ(on_rows[q][i].wid, off_rows[q][i].wid);
      EXPECT_EQ(on_rows[q][i].aggs.count.ToDecimal(),
                off_rows[q][i].aggs.count.ToDecimal());
    }
  }

  reg.set_enabled(true);
  reg.Reset();
}

#endif  // GRETA_TELEMETRY

}  // namespace
}  // namespace greta
