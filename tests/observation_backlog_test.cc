// TakeWindowObservations backlog bound: an engine whose observations are
// never drained keeps at most 256 undrained windows, dropping the OLDEST —
// the adaptive controller wants recent behaviour; an idle driver must not
// let the deque grow without bound (engine.cc kMaxUndrainedObservations).

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::MakeGreta;
using testing::PaperCatalog;

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

// One A event per tick under WITHIN 1 SLIDE 1: every tick closes exactly
// one window, so `ticks` undrained closes probe the backlog cap.
void DriveWindows(GretaEngine* engine, Catalog* catalog, Ts ticks) {
  for (Ts t = 0; t < ticks; ++t) {
    Event e = EventBuilder(catalog, "A", t)
                  .Set("attr", static_cast<double>(t))
                  .Build();
    ASSERT_TRUE(engine->Process(e).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
}

TEST(ObservationBacklog, UndrainedBacklogCapsAt256DroppingOldest) {
  auto catalog = PaperCatalog();
  QuerySpec spec = Parse(
      "RETURN COUNT(*) PATTERN A S+ WITHIN 1 seconds SLIDE 1 seconds",
      catalog.get());
  auto engine = MakeGreta(catalog.get(), spec);

  const Ts kTicks = 400;  // closes 400 windows, 144 past the cap
  DriveWindows(engine.get(), catalog.get(), kTicks);
  (void)engine->TakeResults();

  std::vector<WindowObservation> obs = engine->TakeWindowObservations();
  ASSERT_EQ(obs.size(), 256u);
  // The oldest were dropped: the survivors are the NEWEST 256 windows, in
  // ascending close order with per-window routing deltas intact.
  EXPECT_EQ(obs.front().wid, static_cast<WindowId>(kTicks - 256));
  EXPECT_EQ(obs.back().wid, static_cast<WindowId>(kTicks - 1));
  for (size_t i = 0; i < obs.size(); ++i) {
    EXPECT_EQ(obs[i].wid, obs.front().wid + static_cast<WindowId>(i));
    EXPECT_EQ(obs[i].events_routed, 1u) << "window " << obs[i].wid;
  }

  // Draining empties the backlog.
  EXPECT_TRUE(engine->TakeWindowObservations().empty());
}

TEST(ObservationBacklog, DrainedRegularlyLosesNothing) {
  auto catalog = PaperCatalog();
  QuerySpec spec = Parse(
      "RETURN COUNT(*) PATTERN A S+ WITHIN 1 seconds SLIDE 1 seconds",
      catalog.get());
  auto engine = MakeGreta(catalog.get(), spec);

  const Ts kTicks = 400;
  size_t total = 0;
  WindowId next_expected = 0;
  for (Ts t = 0; t < kTicks; ++t) {
    Event e = EventBuilder(catalog.get(), "A", t)
                  .Set("attr", static_cast<double>(t))
                  .Build();
    ASSERT_TRUE(engine->Process(e).ok());
    if (t % 100 == 99) {
      for (const WindowObservation& o : engine->TakeWindowObservations()) {
        EXPECT_EQ(o.wid, next_expected++);
        ++total;
      }
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
  for (const WindowObservation& o : engine->TakeWindowObservations()) {
    EXPECT_EQ(o.wid, next_expected++);
    ++total;
  }
  // A driver that drains faster than the cap fills sees every window.
  EXPECT_EQ(total, static_cast<size_t>(kTicks));
}

}  // namespace
}  // namespace greta
