// Unit tests for the arbitrary-precision counter substrate.

#include "common/biguint.h"

#include <cstdint>
#include <random>

#include "gtest/gtest.h"

namespace greta {
namespace {

TEST(BigUIntTest, ZeroBehaviour) {
  BigUInt zero;
  EXPECT_TRUE(zero.IsZero());
  EXPECT_EQ(zero.ToDecimal(), "0");
  EXPECT_EQ(zero.Low64(), 0u);
  EXPECT_EQ(zero.BitWidth(), 0u);
  zero.AddUint64(0);
  EXPECT_TRUE(zero.IsZero());
}

TEST(BigUIntTest, SmallValuesRoundTrip) {
  for (uint64_t v : {1ull, 2ull, 10ull, 999ull, 123456789ull,
                     18446744073709551615ull}) {
    BigUInt big(v);
    EXPECT_EQ(big.ToDecimal(), std::to_string(v));
    EXPECT_EQ(big.Low64(), v);
    EXPECT_TRUE(big.FitsUint64());
  }
}

TEST(BigUIntTest, AddCarriesAcrossLimbs) {
  BigUInt a(18446744073709551615ull);  // 2^64 - 1
  a.AddUint64(1);
  EXPECT_EQ(a.ToDecimal(), "18446744073709551616");  // 2^64
  EXPECT_FALSE(a.FitsUint64());
  EXPECT_EQ(a.BitWidth(), 65u);

  BigUInt b(18446744073709551615ull);
  b.Add(b);  // Self-add: 2^65 - 2.
  EXPECT_EQ(b.ToDecimal(), "36893488147419103230");
}

TEST(BigUIntTest, DoublingMatchesPowersOfTwo) {
  BigUInt v(1);
  // 2^200, built by doubling.
  for (int i = 0; i < 200; ++i) {
    BigUInt copy = v;
    v.Add(copy);
  }
  EXPECT_EQ(v.ToDecimal(),
            "1606938044258990275541962092341162602522202993782792835301376");
  EXPECT_EQ(v.BitWidth(), 201u);
}

TEST(BigUIntTest, SubInverseOfAdd) {
  BigUInt a = BigUInt::FromDecimal("340282366920938463463374607431768211456");
  BigUInt b = BigUInt::FromDecimal("99999999999999999999");
  BigUInt sum = a;
  sum.Add(b);
  sum.Sub(b);
  EXPECT_EQ(sum.Compare(a), 0);
  sum.Sub(a);
  EXPECT_TRUE(sum.IsZero());
}

TEST(BigUIntTest, MulUint64AndDecimalParse) {
  BigUInt v(1);
  for (int i = 2; i <= 25; ++i) v.MulUint64(i);
  // 25! = 15511210043330985984000000.
  EXPECT_EQ(v.ToDecimal(), "15511210043330985984000000");
  EXPECT_EQ(BigUInt::FromDecimal("15511210043330985984000000").Compare(v), 0);
}

TEST(BigUIntTest, FullMultiplication) {
  BigUInt a = BigUInt::FromDecimal("18446744073709551616");   // 2^64
  BigUInt b = BigUInt::FromDecimal("340282366920938463463374607431768211456");
  // 2^64 * 2^128 = 2^192.
  EXPECT_EQ(a.Mul(b).ToDecimal(),
            "6277101735386680763835789423207666416102355444464034512896");
  EXPECT_TRUE(a.Mul(BigUInt()).IsZero());
  EXPECT_EQ(a.Mul(BigUInt(1)).Compare(a), 0);
}

TEST(BigUIntTest, DivUint64WithRemainder) {
  BigUInt v = BigUInt::FromDecimal("1000000000000000000000000000000000007");
  uint64_t rem = v.DivUint64(10);
  EXPECT_EQ(rem, 7u);
  EXPECT_EQ(v.ToDecimal(), "100000000000000000000000000000000000");
}

TEST(BigUIntTest, CompareOrdersByMagnitude) {
  BigUInt small(5);
  BigUInt large = BigUInt::FromDecimal("18446744073709551616");
  EXPECT_LT(small.Compare(large), 0);
  EXPECT_GT(large.Compare(small), 0);
  EXPECT_TRUE(small < large);
  EXPECT_TRUE(small != large);
}

TEST(BigUIntTest, ToDoubleApproximation) {
  BigUInt v = BigUInt::FromDecimal("1208925819614629174706176");  // 2^80
  EXPECT_NEAR(v.ToDouble(), 1.208925819614629e24, 1e10);
}

TEST(BigUIntTest, RandomizedAgainstNativeArithmetic) {
  // Property: BigUInt arithmetic agrees with __int128 on values that fit.
  std::mt19937_64 rng(2024);
  for (int i = 0; i < 2000; ++i) {
    uint64_t a = rng() >> (rng() % 40);
    uint64_t b = rng() >> (rng() % 40);
    unsigned __int128 expected =
        static_cast<unsigned __int128>(a) * b + a;
    BigUInt big(a);
    big = big.Mul(BigUInt(b));
    big.AddUint64(a);
    uint64_t lo = static_cast<uint64_t>(expected);
    uint64_t hi = static_cast<uint64_t>(expected >> 64);
    BigUInt reference(hi);
    reference.MulUint64(1);  // no-op
    // Build reference = hi * 2^64 + lo.
    BigUInt shift = BigUInt::FromDecimal("18446744073709551616");
    reference = reference.Mul(shift);
    reference.AddUint64(lo);
    ASSERT_EQ(big.Compare(reference), 0)
        << "a=" << a << " b=" << b << " big=" << big.ToDecimal();
  }
}

}  // namespace
}  // namespace greta
