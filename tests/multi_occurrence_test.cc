// Tests for patterns where an event type occurs several times (Section 9,
// Figure 13): occurrence-unique states, multi-state insertion, and the
// no-self-predecessor rule.

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::CountQuery;
using testing::ExpectMatchesOracle;
using testing::PaperCatalog;

// P = SEQ(A+, B, A, A+, B+), the Figure 13 pattern (states A1+, B2, A3,
// A4+, B5+).
PatternPtr Figure13Pattern() {
  return Pattern::Seq(Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1),
                      Pattern::Atom(0), Pattern::Plus(Pattern::Atom(0)),
                      Pattern::Plus(Pattern::Atom(1)));
}

Stream MakeStream(Catalog* catalog,
                  std::initializer_list<std::pair<const char*, Ts>> events) {
  Stream stream;
  for (const auto& [type, time] : events) {
    stream.Append(EventBuilder(catalog, type, time)
                      .Set("attr", static_cast<double>(time))
                      .Build());
  }
  return stream;
}

TEST(MultiOccurrenceTest, Figure13MinimalStream) {
  // I = {a1, b2, a3, a4, b5}: exactly one way to fill the five positions.
  auto catalog = PaperCatalog();
  Stream stream = MakeStream(
      catalog.get(), {{"A", 1}, {"B", 2}, {"A", 3}, {"A", 4}, {"B", 5}});
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(Figure13Pattern()),
                          stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "1");
}

TEST(MultiOccurrenceTest, Figure13RicherStream) {
  // More a's and b's multiply the combinations; the oracle provides the
  // ground truth and GRETA must match it exactly.
  auto catalog = PaperCatalog();
  Stream stream = MakeStream(catalog.get(), {{"A", 1},
                                             {"A", 2},
                                             {"B", 3},
                                             {"A", 4},
                                             {"A", 5},
                                             {"B", 6},
                                             {"A", 7},
                                             {"B", 8}});
  ExpectMatchesOracle(catalog.get(), CountQuery(Figure13Pattern()), stream);
}

TEST(MultiOccurrenceTest, RepeatedTypeSimpleSequence) {
  // SEQ(A, A): an event may not be its own predecessor, so a single A
  // yields no trend; two A's at distinct times yield one.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(Pattern::Atom(0), Pattern::Atom(0));

  Stream one = MakeStream(catalog.get(), {{"A", 1}});
  std::vector<ResultRow> rows1 =
      ExpectMatchesOracle(catalog.get(), CountQuery(p->Clone()), one);
  EXPECT_TRUE(rows1.empty());

  Stream two = MakeStream(catalog.get(), {{"A", 1}, {"A", 2}});
  std::vector<ResultRow> rows2 =
      ExpectMatchesOracle(catalog.get(), CountQuery(p->Clone()), two);
  ASSERT_EQ(rows2.size(), 1u);
  EXPECT_EQ(rows2[0].aggs.count.ToDecimal(), "1");

  // Three A's: ordered pairs (a1,a2), (a1,a3), (a2,a3) = 3.
  Stream three = MakeStream(catalog.get(), {{"A", 1}, {"A", 2}, {"A", 3}});
  std::vector<ResultRow> rows3 =
      ExpectMatchesOracle(catalog.get(), CountQuery(p->Clone()), three);
  ASSERT_EQ(rows3.size(), 1u);
  EXPECT_EQ(rows3[0].aggs.count.ToDecimal(), "3");
}

TEST(MultiOccurrenceTest, SameTimestampEventsCannotBeAdjacent) {
  // Definition 1 requires strictly increasing times along a trend.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(Pattern::Atom(0), Pattern::Atom(0));
  Stream same = MakeStream(catalog.get(), {{"A", 1}, {"A", 1}});
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), same);
  EXPECT_TRUE(rows.empty());
}

TEST(MultiOccurrenceTest, UnrolledMinLengthPattern) {
  // Section 9: A+ with minimal length 3 == SEQ(A, A, A+). Over n=5 a's the
  // count is sum over lengths 3..5 of C(5, len) = 10 + 5 + 1 = 16.
  auto catalog = PaperCatalog();
  auto unrolled = UnrollMinLength(*Pattern::Plus(Pattern::Atom(0)), 3);
  ASSERT_TRUE(unrolled.ok());
  Stream stream = MakeStream(
      catalog.get(), {{"A", 1}, {"A", 2}, {"A", 3}, {"A", 4}, {"A", 5}});
  std::vector<ResultRow> rows = ExpectMatchesOracle(
      catalog.get(), CountQuery(std::move(unrolled).value()), stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "16");
}

TEST(MultiOccurrenceTest, OccurrenceStatesWithEdgePredicates) {
  // Edge predicates attach to every transition between the referenced
  // types, across all occurrences.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Atom(1),
                              Pattern::Plus(Pattern::Atom(0)));
  QuerySpec spec = CountQuery(std::move(p));
  spec.where.push_back(Expr::Binary(ExprOp::kLt, Expr::Attr(0, 0),
                                    Expr::NextAttr(0, 0)));
  Stream stream = MakeStream(
      catalog.get(), {{"A", 1}, {"B", 2}, {"A", 3}, {"A", 4}});
  ExpectMatchesOracle(catalog.get(), spec, stream);
}

}  // namespace
}  // namespace greta
