// Tests for GRETA template construction (Algorithm 1, Figure 5) including
// the Section-9 occurrence-unique state extension (Figure 13).

#include "query/template.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::PaperCatalog;

TEST(TemplateTest, Figure5NestedPattern) {
  // P = (SEQ(A+, B))+: states {A, B}, start A, end B; transitions
  // A-+->A (inner plus), A->B (SEQ), B-+->A (outer plus). predTypes(A) =
  // {A, B}, predTypes(B) = {A}.
  auto catalog = PaperCatalog();
  TypeId a = catalog->FindType("A");
  TypeId b = catalog->FindType("B");
  PatternPtr p = Pattern::Plus(
      Pattern::Seq(Pattern::Plus(Pattern::Atom(a)), Pattern::Atom(b)));
  auto templ = BuildTemplate(*p, *catalog);
  ASSERT_TRUE(templ.ok());
  const GretaTemplate& t = templ.value();

  ASSERT_EQ(t.num_states(), 2u);
  StateId sa = t.states_for_type(a)[0];
  StateId sb = t.states_for_type(b)[0];
  EXPECT_EQ(t.start_state(), sa);
  EXPECT_EQ(t.end_state(), sb);
  EXPECT_EQ(t.transitions().size(), 3u);

  // predTypes.
  std::vector<StateId> pred_a = t.pred_states(sa);
  std::sort(pred_a.begin(), pred_a.end());
  EXPECT_EQ(pred_a, (std::vector<StateId>{sa, sb}));
  EXPECT_EQ(t.pred_states(sb), (std::vector<StateId>{sa}));

  // Transition labels: A->A is "+", A->B is SEQ, B->A is "+".
  int aa = t.FindTransition(sa, sa);
  int ab = t.FindTransition(sa, sb);
  int ba = t.FindTransition(sb, sa);
  ASSERT_GE(aa, 0);
  ASSERT_GE(ab, 0);
  ASSERT_GE(ba, 0);
  EXPECT_EQ(t.transitions()[aa].label, TransitionLabel::kPlus);
  EXPECT_EQ(t.transitions()[ab].label, TransitionLabel::kSeq);
  EXPECT_EQ(t.transitions()[ba].label, TransitionLabel::kPlus);
  EXPECT_EQ(t.FindTransition(sb, sb), -1);
}

TEST(TemplateTest, KleenePlusOnly) {
  // A+: one state that is both start and end, one "+" self-transition.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Plus(Pattern::Atom(0));
  auto templ = BuildTemplate(*p, *catalog);
  ASSERT_TRUE(templ.ok());
  EXPECT_EQ(templ.value().num_states(), 1u);
  EXPECT_EQ(templ.value().start_state(), templ.value().end_state());
  ASSERT_EQ(templ.value().transitions().size(), 1u);
  EXPECT_EQ(templ.value().transitions()[0].label, TransitionLabel::kPlus);
}

TEST(TemplateTest, Q2SequencePattern) {
  // SEQ(Start, Measurement+, End): start(P)=Start, end(P)=End,
  // mid(P)={Measurement}.
  auto catalog = PaperCatalog();
  TypeId s = 0;
  TypeId m = 1;
  TypeId e = 2;
  PatternPtr p = Pattern::Seq(Pattern::Atom(s),
                              Pattern::Plus(Pattern::Atom(m)),
                              Pattern::Atom(e));
  auto templ = BuildTemplate(*p, *catalog);
  ASSERT_TRUE(templ.ok());
  const GretaTemplate& t = templ.value();
  EXPECT_EQ(t.num_states(), 3u);
  StateId ss = t.states_for_type(s)[0];
  StateId sm = t.states_for_type(m)[0];
  StateId se = t.states_for_type(e)[0];
  EXPECT_EQ(t.start_state(), ss);
  EXPECT_EQ(t.end_state(), se);
  // S->M (SEQ), M->M (+), M->E (SEQ).
  EXPECT_GE(t.FindTransition(ss, sm), 0);
  EXPECT_GE(t.FindTransition(sm, sm), 0);
  EXPECT_GE(t.FindTransition(sm, se), 0);
  EXPECT_EQ(t.transitions().size(), 3u);
}

TEST(TemplateTest, MultipleOccurrencesGetUniqueStates) {
  // Section 9 / Figure 13: SEQ(A+, B, A, A+, B+) becomes
  // SEQ(A1+, B2, A3, A4+, B5+) with five distinct states.
  auto catalog = PaperCatalog();
  TypeId a = 0;
  TypeId b = 1;
  PatternPtr p = Pattern::Seq(
      Pattern::Plus(Pattern::Atom(a)), Pattern::Atom(b), Pattern::Atom(a),
      Pattern::Plus(Pattern::Atom(a)), Pattern::Plus(Pattern::Atom(b)));
  auto templ = BuildTemplate(*p, *catalog);
  ASSERT_TRUE(templ.ok());
  const GretaTemplate& t = templ.value();
  EXPECT_EQ(t.num_states(), 5u);
  EXPECT_EQ(t.states_for_type(a).size(), 3u);
  EXPECT_EQ(t.states_for_type(b).size(), 2u);
  // Start is the first A occurrence, end the last B occurrence.
  EXPECT_EQ(t.start_state(), t.states_for_type(a)[0]);
  EXPECT_EQ(t.end_state(), t.states_for_type(b)[1]);
  // Occurrence labels are disambiguated ("A1", "B2", ...).
  EXPECT_NE(t.states()[0].label, t.states()[2].label);
}

TEST(TemplateTest, NodeSpansSupportSplitResolution) {
  auto catalog = PaperCatalog();
  PatternPtr inner_plus = Pattern::Plus(Pattern::Atom(0));
  const Pattern* inner_raw = inner_plus.get();
  PatternPtr p = Pattern::Seq(std::move(inner_plus), Pattern::Atom(1));
  auto templ = BuildTemplate(*p, *catalog);
  ASSERT_TRUE(templ.ok());
  EXPECT_EQ(templ.value().NodeStartState(inner_raw),
            templ.value().NodeEndState(inner_raw));
  EXPECT_EQ(templ.value().NodeStartState(p.get()),
            templ.value().start_state());
  EXPECT_EQ(templ.value().NodeEndState(p.get()), templ.value().end_state());
}

TEST(TemplateTest, RejectsSugarAndNegationAtBuildTime) {
  auto catalog = PaperCatalog();
  EXPECT_FALSE(BuildTemplate(*Pattern::Star(Pattern::Atom(0)), *catalog).ok());
  EXPECT_FALSE(
      BuildTemplate(*Pattern::Or(Pattern::Atom(0), Pattern::Atom(1)),
                    *catalog)
          .ok());
}

TEST(TemplateTest, ToStringIsReadable) {
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Plus(
      Pattern::Seq(Pattern::Plus(Pattern::Atom(0)), Pattern::Atom(1)));
  auto templ = BuildTemplate(*p, *catalog);
  ASSERT_TRUE(templ.ok());
  std::string s = templ.value().ToString();
  EXPECT_NE(s.find("A(start)"), std::string::npos);
  EXPECT_NE(s.find("B(end)"), std::string::npos);
}

}  // namespace
}  // namespace greta
