// Differential tests for the runtime-dispatched SIMD kernels
// (common/simd.h): every per-ISA table entry must be bit-identical to the
// scalar reference on randomized inputs — including NaN keys, null/str
// lanes, int/double mixes, empty selections, and both the consecutive
// (contiguous-load) and scattered (gather) selection shapes — and the full
// engine must emit bit-identical rows with the vector kernels forced on,
// forced off, and under every compiled ISA.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/event_batch.h"
#include "common/simd.h"
#include "gtest/gtest.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "workload/stock.h"

namespace greta {
namespace {

using simd::CmpConst;
using simd::CmpOp;
using simd::Isa;
using simd::Kernels;
using simd::MaskedSum;
using simd::NumColumn;

constexpr uint8_t kTagNull = 0;
constexpr uint8_t kTagInt = 1;
constexpr uint8_t kTagDouble = 2;
constexpr uint8_t kTagStr = 3;

// The ISA tables worth diffing on this host (scalar is the reference).
std::vector<std::pair<const char*, const Kernels*>> VectorTables() {
  std::vector<std::pair<const char*, const Kernels*>> tables;
  if (simd::Sse42Compiled()) tables.push_back({"sse4.2", &simd::Sse42Kernels()});
  if (simd::Avx2Compiled()) tables.push_back({"avx2", &simd::Avx2Kernels()});
  return tables;
}

struct RandomColumn {
  std::vector<double> dval;
  std::vector<int64_t> ival;
  std::vector<uint8_t> tag;

  NumColumn view() const {
    NumColumn col;
    col.dval = dval.data();
    col.ival = ival.data();
    col.tag = tag.data();
    return col;
  }
};

// A column with adversarial lanes: every tag kind, NaN/inf doubles, int
// payloads beyond 2^53 (where double coercion rounds and the exact int/int
// compare must disagree with it), and string ids.
RandomColumn MakeColumn(std::mt19937_64* rng, size_t n) {
  RandomColumn col;
  col.dval.resize(n);
  col.ival.resize(n);
  col.tag.resize(n);
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_int_distribution<int64_t> small(-1000, 1000);
  std::uniform_int_distribution<int64_t> huge(
      (int64_t{1} << 53) - 4, (int64_t{1} << 53) + 4);
  std::uniform_real_distribution<double> real(-1000.0, 1000.0);
  for (size_t i = 0; i < n; ++i) {
    switch (kind(*rng)) {
      case 0:
        col.tag[i] = kTagNull;
        col.ival[i] = 0;
        col.dval[i] = 0.0;
        break;
      case 1: {
        col.tag[i] = kTagInt;
        const int64_t v = (*rng)() % 8 == 0 ? huge(*rng) : small(*rng);
        col.ival[i] = v;
        col.dval[i] = static_cast<double>(v);
        break;
      }
      case 2: {
        col.tag[i] = kTagDouble;
        const uint64_t mode = (*rng)() % 16;
        col.dval[i] = mode == 0   ? std::numeric_limits<double>::quiet_NaN()
                      : mode == 1 ? std::numeric_limits<double>::infinity()
                      : mode == 2 ? -std::numeric_limits<double>::infinity()
                      : mode == 3 ? -0.0
                                  : real(*rng);
        col.ival[i] = 0;
        break;
      }
      default:
        col.tag[i] = kTagStr;
        col.ival[i] = small(*rng) & 0xfff;
        col.dval[i] = 0.0;
        break;
    }
  }
  return col;
}

CmpConst MakeRandomCmp(std::mt19937_64* rng) {
  CmpConst c;
  c.op = static_cast<CmpOp>((*rng)() % 6);
  switch ((*rng)() % 4) {
    case 0:
      c.rhs_kind = kTagNull;  // nothing passes
      break;
    case 1:
      c.rhs_kind = kTagInt;
      c.rhs_i = static_cast<int64_t>((*rng)() % 2001) - 1000;
      if ((*rng)() % 8 == 0) c.rhs_i = (int64_t{1} << 53) + 1;
      c.rhs_d = static_cast<double>(c.rhs_i);
      break;
    case 2:
      c.rhs_kind = kTagDouble;
      c.rhs_d = (*rng)() % 16 == 0
                    ? std::numeric_limits<double>::quiet_NaN()
                    : static_cast<double>(static_cast<int64_t>((*rng)() %
                                                               2001) -
                                          1000) /
                          3.0;
      break;
    default:
      c.rhs_kind = kTagStr;
      c.rhs_i = static_cast<int64_t>((*rng)() % 0x1000);
      break;
  }
  // The kernels must honor whatever mismatch constant the plan computed;
  // randomizing it exercises both branches without re-deriving semantics.
  c.mismatch_pass = static_cast<uint8_t>((*rng)() % 2);
  return c;
}

// Selection shapes: consecutive lanes hit the contiguous-load fast paths,
// strided/scattered lanes hit the gather paths, and empty selections must
// not read anything.
std::vector<uint32_t> MakeSelection(std::mt19937_64* rng, size_t lanes,
                                    uint32_t rebase, int shape) {
  std::vector<uint32_t> sel;
  if (lanes == 0) return sel;
  switch (shape) {
    case 0:  // dense: every lane, consecutive
      for (size_t i = 0; i < lanes; ++i) {
        sel.push_back(static_cast<uint32_t>(i) + rebase);
      }
      break;
    case 1: {  // strided (partition-like)
      const uint32_t stride = 2 + static_cast<uint32_t>((*rng)() % 9);
      for (size_t i = (*rng)() % stride; i < lanes; i += stride) {
        sel.push_back(static_cast<uint32_t>(i) + rebase);
      }
      break;
    }
    case 2:  // random subset, ascending (order is preserved by kernels)
      for (size_t i = 0; i < lanes; ++i) {
        if ((*rng)() % 3 != 0) sel.push_back(static_cast<uint32_t>(i) + rebase);
      }
      break;
    default:  // empty
      break;
  }
  return sel;
}

TEST(SimdKernelDifferential, FilterSelMatchesScalar) {
  const auto tables = VectorTables();
  std::mt19937_64 rng(20260808);
  const Kernels& ref = simd::ScalarKernels();
  for (int iter = 0; iter < 400; ++iter) {
    const size_t lanes = iter % 7 == 0 ? 0 : 1 + (rng() % 300);
    RandomColumn col = MakeColumn(&rng, lanes);
    const CmpConst cmp = MakeRandomCmp(&rng);
    const uint32_t rebase = rng() % 4 == 0 ? 0 : rng() % 1000;
    for (int shape = 0; shape < 4; ++shape) {
      std::vector<uint32_t> base_sel =
          MakeSelection(&rng, lanes, rebase, shape);
      std::vector<uint32_t> want = base_sel;
      const size_t want_n =
          ref.filter_sel(col.view(), cmp, rebase, want.data(), want.size());
      want.resize(want_n);
      for (const auto& [name, table] : tables) {
        std::vector<uint32_t> got = base_sel;
        const size_t got_n = table->filter_sel(col.view(), cmp, rebase,
                                               got.data(), got.size());
        got.resize(got_n);
        ASSERT_EQ(want, got) << name << " iter " << iter << " shape "
                             << shape;
      }
    }
  }
}

TEST(SimdKernelDifferential, RangeSelectAndMaskedCountSumMatchScalar) {
  const auto tables = VectorTables();
  std::mt19937_64 rng(7);
  const Kernels& ref = simd::ScalarKernels();
  std::uniform_real_distribution<double> real(-100.0, 100.0);
  for (int iter = 0; iter < 300; ++iter) {
    const size_t n = iter % 5 == 0 ? 0 : 1 + (rng() % 200);
    std::vector<double> keys(n);
    std::vector<uint64_t> counts(n);
    for (size_t i = 0; i < n; ++i) {
      keys[i] = rng() % 32 == 0 ? std::numeric_limits<double>::quiet_NaN()
                                : real(rng);
      counts[i] = rng() % 4 == 0 ? 0 : rng();
    }
    const uint32_t begin = n == 0 ? 0 : rng() % n;
    const uint32_t end = n == 0 ? 0 : begin + rng() % (n - begin + 1);
    double lo = rng() % 8 == 0 ? -std::numeric_limits<double>::infinity()
                               : real(rng);
    double hi = rng() % 8 == 0 ? std::numeric_limits<double>::infinity()
                               : real(rng);
    const bool lo_strict = rng() % 2 == 0;
    const bool hi_strict = rng() % 2 == 0;

    std::vector<uint32_t> want(n);
    const size_t want_n = ref.range_select(keys.data(), begin, end, lo,
                                           lo_strict, hi, hi_strict,
                                           want.data());
    want.resize(want_n);
    const MaskedSum want_sum =
        ref.masked_count_sum(keys.data(), counts.data(), begin, end, lo,
                             lo_strict, hi, hi_strict);
    for (const auto& [name, table] : tables) {
      std::vector<uint32_t> got(n);
      const size_t got_n = table->range_select(keys.data(), begin, end, lo,
                                               lo_strict, hi, hi_strict,
                                               got.data());
      got.resize(got_n);
      ASSERT_EQ(want, got) << name << " iter " << iter;
      const MaskedSum got_sum =
          table->masked_count_sum(keys.data(), counts.data(), begin, end, lo,
                                  lo_strict, hi, hi_strict);
      ASSERT_EQ(want_sum.sum, got_sum.sum) << name << " iter " << iter;
      ASSERT_EQ(want_sum.lanes, got_sum.lanes) << name << " iter " << iter;
    }
  }
}

TEST(SimdKernelDifferential, LeafScansMatchScalarAndLowerBound) {
  const auto tables = VectorTables();
  std::mt19937_64 rng(11);
  const Kernels& ref = simd::ScalarKernels();
  std::uniform_real_distribution<double> real(-50.0, 50.0);
  for (int iter = 0; iter < 300; ++iter) {
    const int n = static_cast<int>(rng() % 100);
    std::vector<double> keys(n);
    for (double& k : keys) k = real(rng);
    std::sort(keys.begin(), keys.end());
    const double lo = rng() % 4 == 0 && n > 0 ? keys[rng() % n] : real(rng);
    const double hi = rng() % 4 == 0 && n > 0 ? keys[rng() % n] : real(rng);
    const bool lo_strict = rng() % 2 == 0;
    const bool hi_strict = rng() % 2 == 0;

    const int want_skip = ref.leaf_skip(keys.data(), n, lo, lo_strict);
    // The skip phase is exactly a lower/upper bound over the sorted leaf.
    const auto bound =
        lo_strict ? std::upper_bound(keys.begin(), keys.end(), lo)
                  : std::lower_bound(keys.begin(), keys.end(), lo);
    ASSERT_EQ(want_skip, static_cast<int>(bound - keys.begin()))
        << "iter " << iter;
    const int i0 = n == 0 ? 0 : static_cast<int>(rng() % (n + 1));
    const int want_stop = ref.leaf_stop(keys.data(), i0, n, hi, hi_strict);
    for (const auto& [name, table] : tables) {
      ASSERT_EQ(want_skip, table->leaf_skip(keys.data(), n, lo, lo_strict))
          << name << " iter " << iter;
      ASSERT_EQ(want_stop,
                table->leaf_stop(keys.data(), i0, n, hi, hi_strict))
          << name << " iter " << iter;
    }
  }
}

TEST(SimdKernelDifferential, RunSplitAndSplitmixMatchScalar) {
  const auto tables = VectorTables();
  std::mt19937_64 rng(13);
  const Kernels& ref = simd::ScalarKernels();
  for (int iter = 0; iter < 300; ++iter) {
    const size_t n = 1 + (rng() % 200);
    std::vector<int64_t> times;
    int64_t t = static_cast<int64_t>(rng() % 100);
    while (times.size() < n) {
      const size_t run = 1 + (rng() % 9);
      for (size_t i = 0; i < run && times.size() < n; ++i) times.push_back(t);
      ++t;
    }
    for (size_t i = 0; i < n; i += 1 + (rng() % 7)) {
      const size_t want = ref.run_split(times.data(), i, n);
      size_t brute = i + 1;
      while (brute < n && times[brute] == times[i]) ++brute;
      ASSERT_EQ(want, brute) << "iter " << iter << " i " << i;
      for (const auto& [name, table] : tables) {
        ASSERT_EQ(want, table->run_split(times.data(), i, n))
            << name << " iter " << iter << " i " << i;
      }
    }

    std::vector<uint64_t> h(n);
    for (uint64_t& x : h) x = rng();
    std::vector<uint64_t> want_h = h;
    ref.splitmix_bulk(want_h.data(), want_h.size());
    for (const auto& [name, table] : tables) {
      std::vector<uint64_t> got_h = h;
      table->splitmix_bulk(got_h.data(), got_h.size());
      ASSERT_EQ(want_h, got_h) << name << " iter " << iter;
    }
  }
}

// ---------------------------------------------------------------------------
// Full-engine differential: rows must be bit-identical between the scalar
// kernel twins (enable_simd=false), the dispatched vector kernels, and
// every compiled ISA forced via the test hook — at batch sizes 1, 7 (runs
// straddling batch boundaries) and 256.
// ---------------------------------------------------------------------------

std::vector<ResultRow> RunQuery(Catalog* catalog, const QuerySpec& spec,
                                const Stream& stream, size_t batch_size,
                                bool enable_simd) {
  EngineOptions options;
  options.enable_simd = enable_simd;
  auto built = GretaEngine::Create(catalog, spec, options);
  EXPECT_TRUE(built.ok());
  std::unique_ptr<GretaEngine> engine = std::move(built).value();
  std::vector<ResultRow> rows;
  auto drain = [&] {
    for (ResultRow& row : engine->TakeResults()) rows.push_back(std::move(row));
  };
  if (batch_size == 0) {
    for (const Event& e : stream.events()) {
      EXPECT_TRUE(engine->Process(e).ok());
      drain();
    }
  } else {
    EventBatch batch;
    batch.Reserve(batch_size);
    const std::vector<Event>& events = stream.events();
    size_t i = 0;
    while (i < events.size()) {
      batch.clear();
      for (; i < events.size() && batch.size() < batch_size; ++i) {
        batch.Append(events[i]);
      }
      EXPECT_TRUE(engine->ProcessBatch(batch).ok());
      drain();
    }
  }
  EXPECT_TRUE(engine->Flush().ok());
  drain();
  return rows;
}

void ExpectIdenticalRows(const std::vector<ResultRow>& want,
                         const std::vector<ResultRow>& got,
                         const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].wid, got[i].wid) << label << " row " << i;
    ASSERT_EQ(want[i].group, got[i].group) << label << " row " << i;
    ASSERT_EQ(want[i].aggs.count.ToDecimal(), got[i].aggs.count.ToDecimal())
        << label << " row " << i;
    ASSERT_EQ(want[i].aggs.sum, got[i].aggs.sum) << label << " row " << i;
    ASSERT_EQ(want[i].aggs.min, got[i].aggs.min) << label << " row " << i;
    ASSERT_EQ(want[i].aggs.max, got[i].aggs.max) << label << " row " << i;
  }
}

TEST(SimdEngineDifferential, RowsBitIdenticalAcrossIsasAndBatchSizes) {
  Catalog catalog;
  StockConfig stock;
  stock.rate = 60;
  stock.duration = 12;
  Stream stream = GenerateStockStream(&catalog, stock);

  const char* queries[] = {
      // Const vertex predicates (filter kernels; volume crosses the
      // projection use threshold in the two-state Kleene plan).
      "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] "
      "AND S.volume > 100 AND S.volume <= 700 AND S.price > 50.0 "
      "GROUP-BY sector WITHIN 4 seconds SLIDE 4 seconds",
      // Residual NEXT predicate (vectorized edge re-filter + range kernels).
      "RETURN sector, COUNT(*), SUM(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "AND S.volume >= NEXT(S).volume "
      "GROUP-BY sector WITHIN 4 seconds SLIDE 2 seconds",
      // Sliding pure-lower bounds (suffix-merge strategy + leaf kernels).
      "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] "
      "AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 6 seconds SLIDE 2 seconds",
  };

  const Isa saved = simd::DispatchedIsa();
  for (const char* text : queries) {
    auto spec = ParseQuery(text, &catalog);
    ASSERT_TRUE(spec.ok()) << text;
    const QuerySpec query = std::move(spec).value();
    // Reference: scalar per-event path with the vector kernels disabled.
    std::vector<ResultRow> want =
        RunQuery(&catalog, query, stream, 0, /*enable_simd=*/false);
    for (size_t batch_size : {size_t{1}, size_t{7}, size_t{256}}) {
      const std::string tag = std::to_string(batch_size);
      ExpectIdenticalRows(
          want, RunQuery(&catalog, query, stream, batch_size, false),
          "nosimd batch" + tag);
      ExpectIdenticalRows(
          want, RunQuery(&catalog, query, stream, batch_size, true),
          "dispatched batch" + tag);
    }
    // Force each compiled ISA (ForceIsa clamps to what the host supports).
    for (Isa isa : {Isa::kScalar, Isa::kSse42, Isa::kAvx2}) {
      simd::ForceIsa(isa);
      ExpectIdenticalRows(want, RunQuery(&catalog, query, stream, 256, true),
                          std::string("forced ") +
                              simd::IsaName(simd::DispatchedIsa()));
    }
    simd::ForceIsa(saved);
  }
}

}  // namespace
}  // namespace greta
