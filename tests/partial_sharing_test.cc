// Partial sharing of common Kleene sub-patterns (Hamlet snapshot
// propagation): planner pooling, the merged snapshot-propagating runtime,
// and the equivalence suite asserting that every query of a partially
// shared cluster produces the same rows as its own dedicated engine —
// across differing pattern suffixes, differing window lengths with equal
// slide, grouping, every aggregate kind, unbounded windows, and semantics
// (the restricted semantics fall back to unshared execution and must stay
// equivalent too).

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "query/parser.h"
#include "sharing/shared_engine.h"
#include "tests/test_util.h"
#include "workload/stock.h"

namespace greta {
namespace {

using sharing::PlanSharing;
using sharing::QueryCluster;
using sharing::SharedEngineOptions;
using sharing::SharedWorkloadEngine;
using sharing::SharingOptions;
using sharing::SharingPlan;

QuerySpec Parse(const std::string& text, Catalog* catalog) {
  auto spec = ParseQuery(text, catalog);
  EXPECT_TRUE(spec.ok()) << text << ": " << spec.status().ToString();
  return std::move(spec).value();
}

std::unique_ptr<Catalog> StockCatalog() {
  auto catalog = std::make_unique<Catalog>();
  RegisterStockTypes(catalog.get());
  return catalog;
}

Stream StockStream(Catalog* catalog, double halt_probability = 0.05) {
  StockConfig config;
  config.seed = 11;
  config.num_companies = 4;
  config.num_sectors = 2;
  config.rate = 40;
  config.duration = 30;
  config.drift = 1.0;
  config.halt_probability = halt_probability;
  return GenerateStockStream(catalog, config);
}

// Runs the workload both ways and asserts per-query row equivalence;
// returns the shared engine for plan inspection.
std::unique_ptr<SharedWorkloadEngine> ExpectWorkloadEquivalent(
    const Catalog* catalog, const std::vector<QuerySpec>& workload,
    const Stream& stream, const SharedEngineOptions& options = {}) {
  auto shared = SharedWorkloadEngine::Create(catalog, workload, options);
  EXPECT_TRUE(shared.ok()) << shared.status().ToString();
  if (!shared.ok()) return nullptr;
  for (const Event& e : stream.events()) {
    Status s = shared.value()->Process(e);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
  EXPECT_TRUE(shared.value()->Flush().ok());

  for (size_t q = 0; q < workload.size(); ++q) {
    auto independent =
        GretaEngine::Create(catalog, workload[q].Clone(), options.engine);
    EXPECT_TRUE(independent.ok()) << independent.status().ToString();
    if (!independent.ok()) return nullptr;
    std::vector<ResultRow> expected =
        testing::RunEngine(independent.value().get(), stream);
    std::vector<ResultRow> actual = shared.value()->TakeResults(q);
    std::string diff;
    EXPECT_TRUE(RowsEquivalent(actual, expected,
                               shared.value()->agg_plan_for(q), &diff))
        << "query " << q << ": " << diff;
  }
  return std::move(shared).value();
}

size_t NumPartialClusters(const SharingPlan& plan) {
  size_t n = 0;
  for (const QueryCluster& c : plan.clusters) {
    n += (c.shared && c.partial) ? 1 : 0;
  }
  return n;
}

// The common Kleene core of the partial workloads below: down-trend runs
// per company, grouped by sector.
const char* kCoreTail =
    " WHERE [company, sector] AND S.price > NEXT(S).price GROUP-BY sector";

TEST(PartialSharingPlannerTest, PoolsDifferingSuffixesAndWindows) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  // Same Kleene core, different suffix.
  workload.push_back(Parse(
      std::string("RETURN sector, COUNT(*) PATTERN Stock S+") + kCoreTail +
          " WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  workload.push_back(Parse(
      std::string("RETURN sector, COUNT(*) PATTERN SEQ(Stock S+, Halt H)") +
          kCoreTail + " WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  // Same pattern, different WITHIN under the same slide.
  workload.push_back(Parse(
      std::string("RETURN sector, SUM(S.price) PATTERN Stock S+") +
          kCoreTail + " WITHIN 20 seconds SLIDE 5 seconds",
      catalog.get()));

  auto plan = PlanSharing(workload, *catalog.get());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan.value().clusters.size(), 1u);
  const QueryCluster& cluster = plan.value().clusters[0];
  EXPECT_TRUE(cluster.shared);
  EXPECT_TRUE(cluster.partial);
  EXPECT_EQ(cluster.query_ids, (std::vector<size_t>{0, 1, 2}));
  EXPECT_LT(cluster.shared_cost, cluster.independent_cost);
  EXPECT_NE(plan.value().ToString().find("SHARED-PARTIAL"),
            std::string::npos);
}

TEST(PartialSharingPlannerTest, IneligibleShapesStayDedicated) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  // No Kleene prefix.
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(Stock S, Halt H) WITHIN 10 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(Stock S, Halt H, Halt G) "
      "WITHIN 10 seconds",
      catalog.get()));
  // Negation.
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(NOT Halt H, Stock S+) WITHIN 10 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN SUM(S.price) PATTERN SEQ(NOT Halt H, Stock S+) "
      "WITHIN 20 seconds",
      catalog.get()));
  // Different slide.
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 seconds SLIDE 2 seconds",
      catalog.get()));
  // Core predicates disagree.
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE S.volume > 20 "
      "WITHIN 12 seconds SLIDE 6 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WHERE S.volume > 50 "
      "WITHIN 24 seconds SLIDE 6 seconds",
      catalog.get()));

  auto plan = PlanSharing(workload, *catalog.get());
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(NumPartialClusters(plan.value()), 0u);
  EXPECT_EQ(plan.value().num_shared_clusters(), 0u);
}

TEST(PartialSharingPlannerTest, DisableFlagKeepsQueriesApart) {
  auto catalog = StockCatalog();
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN Stock S+ WITHIN 20 seconds SLIDE 5 seconds",
      catalog.get()));
  SharingOptions off;
  off.enable_partial_sharing = false;
  auto plan = PlanSharing(workload, *catalog.get(), off);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(NumPartialClusters(plan.value()), 0u);
}

TEST(PartialSharingEquivalenceTest, DifferingSuffixes) {
  // Three suffixes of the same Kleene core under ONE window: the full
  // patterns (and so the exact fingerprints) all differ, yet the queries
  // run as one snapshot-propagating runtime.
  auto catalog = StockCatalog();
  Stream stream = StockStream(catalog.get());
  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      std::string("RETURN sector, COUNT(*) PATTERN Stock S+") + kCoreTail +
          " WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  workload.push_back(Parse(
      std::string("RETURN sector, COUNT(*) PATTERN SEQ(Stock S+, Halt H)") +
          kCoreTail + " WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  workload.push_back(Parse(
      std::string("RETURN sector, SUM(S.price) "
                  "PATTERN SEQ(Stock S+, Halt H, Halt G)") +
          kCoreTail + " WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  auto shared = ExpectWorkloadEquivalent(catalog.get(), workload, stream);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(NumPartialClusters(shared->sharing_plan()), 1u);
}

TEST(PartialSharingEquivalenceTest, DifferingWindowsEqualSlide) {
  auto catalog = StockCatalog();
  Stream stream = StockStream(catalog.get());
  std::vector<QuerySpec> workload;
  for (Ts within : {4, 8, 12, 20}) {
    workload.push_back(Parse(
        std::string("RETURN sector, COUNT(*) PATTERN Stock S+") + kCoreTail +
            " WITHIN " + std::to_string(within) +
            " seconds SLIDE 4 seconds",
        catalog.get()));
  }
  auto shared = ExpectWorkloadEquivalent(catalog.get(), workload, stream);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(NumPartialClusters(shared->sharing_plan()), 1u);
  // One merged graph: the shared core stores each Stock event once, not
  // once per query.
  auto independent = GretaEngine::Create(catalog.get(), workload[0].Clone());
  ASSERT_TRUE(independent.ok());
  std::vector<ResultRow> rows =
      testing::RunEngine(independent.value().get(), stream);
  (void)rows;
  EXPECT_LT(shared->stats().vertices_stored,
            4 * independent.value()->stats().vertices_stored);
}

TEST(PartialSharingEquivalenceTest, AllAggregateKindsFoldThroughSnapshots) {
  auto catalog = StockCatalog();
  Stream stream = StockStream(catalog.get());
  std::vector<QuerySpec> workload;
  const std::vector<std::string> aggs = {
      "COUNT(*)", "SUM(S.price)", "MIN(S.price), MAX(S.price)", "COUNT(S)",
      "AVG(S.volume)"};
  for (size_t i = 0; i < aggs.size(); ++i) {
    // Cycle windows so no two queries share an exact fingerprint.
    Ts within = 5 + 5 * static_cast<Ts>(i);
    workload.push_back(Parse(
        "RETURN sector, " + aggs[i] + " PATTERN Stock S+" + kCoreTail +
            " WITHIN " + std::to_string(within) +
            " seconds SLIDE 5 seconds",
        catalog.get()));
  }
  auto shared = ExpectWorkloadEquivalent(catalog.get(), workload, stream);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(NumPartialClusters(shared->sharing_plan()), 1u);
}

TEST(PartialSharingEquivalenceTest, SuffixPredicatesStayPerQuery) {
  auto catalog = StockCatalog();
  Stream stream = StockStream(catalog.get());
  std::vector<QuerySpec> workload;
  // Same core predicates; one query filters its suffix Halt events, the
  // other does not — they still pool (suffix predicates are per query).
  workload.push_back(Parse(
      std::string("RETURN sector, COUNT(*) PATTERN SEQ(Stock S+, Halt H)") +
          kCoreTail + " WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  workload.push_back(Parse(
      std::string("RETURN sector, COUNT(*) PATTERN SEQ(Stock S+, Halt H)") +
          " WHERE [company, sector] AND S.price > NEXT(S).price AND "
          "H.sector < 1 GROUP-BY sector WITHIN 20 seconds SLIDE 5 seconds",
      catalog.get()));
  auto shared = ExpectWorkloadEquivalent(catalog.get(), workload, stream);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(NumPartialClusters(shared->sharing_plan()), 1u);
}

TEST(PartialSharingEquivalenceTest, UnboundedWindows) {
  auto catalog = StockCatalog();
  StockConfig config;
  config.seed = 3;
  config.num_companies = 3;
  config.num_sectors = 2;
  config.rate = 10;
  config.duration = 12;
  config.drift = 1.0;
  config.halt_probability = 0.1;
  Stream stream = GenerateStockStream(catalog.get(), config);

  std::vector<QuerySpec> workload;
  workload.push_back(Parse(
      std::string("RETURN sector, COUNT(*) PATTERN Stock S+") + kCoreTail,
      catalog.get()));
  workload.push_back(Parse(
      std::string("RETURN sector, SUM(S.price) "
                  "PATTERN SEQ(Stock S+, Halt H)") +
          kCoreTail,
      catalog.get()));
  auto shared = ExpectWorkloadEquivalent(catalog.get(), workload, stream);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(NumPartialClusters(shared->sharing_plan()), 1u);
}

TEST(PartialSharingEquivalenceTest, RestrictedSemanticsFallBackUnshared) {
  for (Semantics semantics :
       {Semantics::kSkipTillNextMatch, Semantics::kContiguous}) {
    auto catalog = StockCatalog();
    Stream stream = StockStream(catalog.get());
    std::vector<QuerySpec> workload;
    workload.push_back(Parse(
        std::string("RETURN sector, COUNT(*) PATTERN Stock S+") + kCoreTail +
            " WITHIN 10 seconds SLIDE 5 seconds",
        catalog.get()));
    workload.push_back(Parse(
        std::string("RETURN sector, COUNT(*) PATTERN Stock S+") + kCoreTail +
            " WITHIN 20 seconds SLIDE 5 seconds",
        catalog.get()));
    SharedEngineOptions options;
    options.engine.semantics = semantics;
    auto shared =
        ExpectWorkloadEquivalent(catalog.get(), workload, stream, options);
    ASSERT_NE(shared, nullptr);
    EXPECT_EQ(NumPartialClusters(shared->sharing_plan()), 0u);
  }
}

// Acceptance criterion: an 8-query workload sharing one Kleene sub-pattern
// but differing in pattern suffix or window length runs as one partially
// shared cluster, equivalent to independent engines for every query.
TEST(PartialSharingEquivalenceTest, EightQuerySharedCoreWorkload) {
  auto catalog = StockCatalog();
  Stream stream = StockStream(catalog.get());
  std::vector<QuerySpec> workload;
  const std::vector<std::string> aggs = {"COUNT(*)", "SUM(S.price)",
                                         "MIN(S.price)", "AVG(S.price)"};
  // 4 windows x plain core, 4 windows x Halt suffix.
  for (int i = 0; i < 4; ++i) {
    workload.push_back(Parse(
        "RETURN sector, " + aggs[i] + " PATTERN Stock S+" + kCoreTail +
            " WITHIN " + std::to_string(5 * (i + 1)) +
            " seconds SLIDE 5 seconds",
        catalog.get()));
  }
  for (int i = 0; i < 4; ++i) {
    workload.push_back(Parse(
        "RETURN sector, " + aggs[i] +
            " PATTERN SEQ(Stock S+, Halt H)" + kCoreTail + " WITHIN " +
            std::to_string(5 * (i + 1)) + " seconds SLIDE 5 seconds",
        catalog.get()));
  }
  ASSERT_EQ(workload.size(), 8u);
  auto shared = ExpectWorkloadEquivalent(catalog.get(), workload, stream);
  ASSERT_NE(shared, nullptr);
  EXPECT_EQ(shared->sharing_plan().clusters.size(), 1u);
  EXPECT_EQ(NumPartialClusters(shared->sharing_plan()), 1u);
}

TEST(PartialSharingEquivalenceTest, MixedExactPartialAndDedicated) {
  auto catalog = StockCatalog();
  Stream stream = StockStream(catalog.get());
  std::vector<QuerySpec> workload;
  // Exact cluster (identical fingerprints, different aggregates).
  workload.push_back(Parse(
      std::string("RETURN sector, COUNT(*) PATTERN Stock S+") + kCoreTail +
          " WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  workload.push_back(Parse(
      std::string("RETURN sector, SUM(S.price) PATTERN Stock S+") +
          kCoreTail + " WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  // Partial pool (same core, one suffixed, one longer window).
  workload.push_back(Parse(
      std::string("RETURN sector, COUNT(*) PATTERN SEQ(Stock S+, Halt H)") +
          kCoreTail + " WITHIN 10 seconds SLIDE 5 seconds",
      catalog.get()));
  workload.push_back(Parse(
      std::string("RETURN sector, COUNT(*) PATTERN Stock S+") + kCoreTail +
          " WITHIN 15 seconds SLIDE 5 seconds",
      catalog.get()));
  // Dedicated (no Kleene prefix).
  workload.push_back(Parse(
      "RETURN COUNT(*) PATTERN SEQ(Stock S, Halt H) WHERE [sector] "
      "WITHIN 10 seconds",
      catalog.get()));
  auto shared = ExpectWorkloadEquivalent(catalog.get(), workload, stream);
  ASSERT_NE(shared, nullptr);
  const SharingPlan& plan = shared->sharing_plan();
  EXPECT_EQ(plan.clusters.size(), 3u);
  EXPECT_EQ(plan.num_shared_clusters(), 2u);
  EXPECT_EQ(NumPartialClusters(plan), 1u);
}

}  // namespace
}  // namespace greta
