// Tests of the GRETA graph and aggregate propagation against the paper's
// worked examples: Figure 6 (graph shapes and trend counts), Example 1 /
// Figure 12 (all aggregation functions), Theorem 4.3 intermediate counts.

#include "core/engine.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::CountQuery;
using testing::Figure12Stream;
using testing::Figure6Stream;
using testing::MakeGreta;
using testing::PaperCatalog;
using testing::RunEngine;
using testing::SingleCount;

TEST(GretaGraphTest, Figure6cNestedPatternCounts43Trends) {
  // P = (SEQ(A+, B))+ over I = {a1,b2,c2,a3,e3,a4,c5,d6,b7,a8,b9}:
  // "the GRETA graph in Figure 6(c) compactly captures all 43 event trends".
  auto catalog = PaperCatalog();
  TypeId a = catalog->FindType("A");
  TypeId b = catalog->FindType("B");
  QuerySpec spec = CountQuery(Pattern::Plus(
      Pattern::Seq(Pattern::Plus(Pattern::Atom(a)), Pattern::Atom(b))));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream = Figure6Stream(catalog.get());
  EXPECT_EQ(SingleCount(RunEngine(engine.get(), stream)), "43");
}

TEST(GretaGraphTest, Figure6aKleenePlus) {
  // P = A+ over the same stream: a's at times 1, 3, 4, 8 yield 2^4 - 1
  // trends (every non-empty ordered subset).
  auto catalog = PaperCatalog();
  QuerySpec spec =
      CountQuery(Pattern::Plus(Pattern::Atom(catalog->FindType("A"))));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream = Figure6Stream(catalog.get());
  EXPECT_EQ(SingleCount(RunEngine(engine.get(), stream)), "15");
}

TEST(GretaGraphTest, Figure6bSeqKleeneB) {
  // P = SEQ(A+, B): trends = (non-empty subset of a's before b) x b.
  // b2: a1 -> 1; b7: subsets of {a1,a3,a4} -> 7; b9: subsets of
  // {a1,a3,a4,a8} -> 15. Total 23.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(
      Pattern::Seq(Pattern::Plus(Pattern::Atom(catalog->FindType("A"))),
                   Pattern::Atom(catalog->FindType("B"))));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream = Figure6Stream(catalog.get());
  EXPECT_EQ(SingleCount(RunEngine(engine.get(), stream)), "23");
}

TEST(GretaGraphTest, Figure12AllAggregates) {
  // Example 1: P = (SEQ(A+, B))+ over I = {a1,b2,a3,a4,b7} detects
  // COUNT(*)=11 trends, COUNT(A)=20, MIN(A.attr)=4, MAX(A.attr)=6,
  // SUM(A.attr)=100, AVG(A.attr)=5.
  auto catalog = PaperCatalog();
  TypeId a = catalog->FindType("A");
  TypeId b = catalog->FindType("B");
  AttrId attr = catalog->type(a).FindAttr("attr");

  QuerySpec spec;
  spec.pattern = Pattern::Plus(
      Pattern::Seq(Pattern::Plus(Pattern::Atom(a)), Pattern::Atom(b)));
  spec.aggs = {
      {AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"},
      {AggKind::kCountType, a, kInvalidAttr, "COUNT(A)"},
      {AggKind::kMin, a, attr, "MIN(A.attr)"},
      {AggKind::kMax, a, attr, "MAX(A.attr)"},
      {AggKind::kSum, a, attr, "SUM(A.attr)"},
      {AggKind::kAvg, a, attr, "AVG(A.attr)"},
  };

  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream = Figure12Stream(catalog.get());
  std::vector<ResultRow> rows = RunEngine(engine.get(), stream);
  ASSERT_EQ(rows.size(), 1u);
  const AggOutputs& out = rows[0].aggs;
  EXPECT_EQ(out.count.ToDecimal(), "11");
  EXPECT_EQ(out.type_count.ToDecimal(), "20");
  EXPECT_DOUBLE_EQ(out.min, 4.0);
  EXPECT_DOUBLE_EQ(out.max, 6.0);
  EXPECT_DOUBLE_EQ(out.sum, 100.0);
  EXPECT_DOUBLE_EQ(out.Avg(), 5.0);
}

TEST(GretaGraphTest, IntermediateCountsOfSection42) {
  // Section 4.2 derives a4.count = 6 and b7.count = 10 on Figure 6(c); the
  // final count over the prefix {a1,b2,c2,a3,e3,a4,c5,d6,b7} is
  // b2.count + b7.count = 1 + 10 = 11.
  auto catalog = PaperCatalog();
  TypeId a = catalog->FindType("A");
  TypeId b = catalog->FindType("B");
  QuerySpec spec = CountQuery(Pattern::Plus(
      Pattern::Seq(Pattern::Plus(Pattern::Atom(a)), Pattern::Atom(b))));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream full = Figure6Stream(catalog.get());
  Stream prefix;
  for (const Event& e : full.events()) {
    if (e.time <= 7) prefix.Append(e);
  }
  EXPECT_EQ(SingleCount(RunEngine(engine.get(), prefix)), "11");
}

TEST(GretaGraphTest, SingleEventTypePattern) {
  // Pattern = a bare event type (no Kleene): each matching event is a trend.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Atom(catalog->FindType("B")));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream = Figure6Stream(catalog.get());
  EXPECT_EQ(SingleCount(RunEngine(engine.get(), stream)), "3");
}

TEST(GretaGraphTest, EmptyStreamEmitsNothing) {
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream;
  EXPECT_TRUE(RunEngine(engine.get(), stream).empty());
}

TEST(GretaGraphTest, StreamWithoutMatchesEmitsNothing) {
  // Pattern over D only; the stream contains a single d6 -> one trend; but
  // a SEQ(D, E) needs an E after it, which never comes.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Seq(
      Pattern::Atom(catalog->FindType("D")),
      Pattern::Atom(catalog->FindType("E"))));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream = Figure6Stream(catalog.get());
  EXPECT_TRUE(RunEngine(engine.get(), stream).empty());
}

TEST(GretaGraphTest, ModularCounterMatchesExactOnSmallCounts) {
  auto catalog = PaperCatalog();
  TypeId a = catalog->FindType("A");
  TypeId b = catalog->FindType("B");
  for (CounterMode mode : {CounterMode::kExact, CounterMode::kModular}) {
    QuerySpec spec = CountQuery(Pattern::Plus(
        Pattern::Seq(Pattern::Plus(Pattern::Atom(a)), Pattern::Atom(b))));
    EngineOptions options;
    options.counter_mode = mode;
    auto engine = MakeGreta(catalog.get(), std::move(spec), options);
    Stream stream = Figure6Stream(catalog.get());
    EXPECT_EQ(SingleCount(RunEngine(engine.get(), stream)), "43");
  }
}

TEST(GretaGraphTest, ExactCounterHandlesExponentialBlowup) {
  // 80 A events make A+ match 2^80 - 1 trends: far past uint64. The exact
  // counter must report the precise value.
  auto catalog = PaperCatalog();
  QuerySpec spec =
      CountQuery(Pattern::Plus(Pattern::Atom(catalog->FindType("A"))));
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Stream stream;
  for (int i = 1; i <= 80; ++i) {
    stream.Append(EventBuilder(catalog.get(), "A", i).Set("attr", 1.0).Build());
  }
  // 2^80 - 1.
  EXPECT_EQ(SingleCount(RunEngine(engine.get(), stream)),
            "1208925819614629174706175");
}

}  // namespace
}  // namespace greta
