// Tests for Section-9 language extensions: disjunction and conjunction
// count combination (formulas and engine-level execution), star/optional
// desugaring end-to-end.

#include "core/combinators.h"

#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::CountQuery;
using testing::ExpectMatchesOracle;
using testing::MakeGreta;
using testing::PaperCatalog;
using testing::RunEngine;
using testing::SingleCount;

TEST(CombinatorFormulaTest, Choose2) {
  EXPECT_EQ(combinators::Choose2(BigUInt(0)).ToDecimal(), "0");
  EXPECT_EQ(combinators::Choose2(BigUInt(1)).ToDecimal(), "0");
  EXPECT_EQ(combinators::Choose2(BigUInt(2)).ToDecimal(), "1");
  EXPECT_EQ(combinators::Choose2(BigUInt(10)).ToDecimal(), "45");
  // Large: C(2^64, 2) = 2^63 * (2^64 - 1).
  BigUInt big = BigUInt::FromDecimal("18446744073709551616");
  EXPECT_EQ(combinators::Choose2(big).ToDecimal(),
            "170141183460469231722463931679029329920");
}

TEST(CombinatorFormulaTest, DisjunctionInclusionExclusion) {
  // COUNT(Pi | Pj) = COUNT(Pi) + COUNT(Pj) - COUNT(Pij).
  EXPECT_EQ(combinators::CombineDisjunction(BigUInt(10), BigUInt(7),
                                            BigUInt(3))
                .ToDecimal(),
            "14");
  EXPECT_EQ(
      combinators::CombineDisjunction(BigUInt(10), BigUInt(7), BigUInt(0))
          .ToDecimal(),
      "17");
}

TEST(CombinatorFormulaTest, ConjunctionPairsTrends) {
  // Ci = COUNT(Pi) - Cij, Cj = COUNT(Pj) - Cij;
  // COUNT = Ci*Cj + Ci*Cij + Cj*Cij + C(Cij, 2).
  // With COUNT(Pi)=5, COUNT(Pj)=4, Cij=2: Ci=3, Cj=2 ->
  // 6 + 6 + 4 + 1 = 17.
  EXPECT_EQ(
      combinators::CombineConjunction(BigUInt(5), BigUInt(4), BigUInt(2))
          .ToDecimal(),
      "17");
  // Disjoint case: plain product.
  EXPECT_EQ(
      combinators::CombineConjunction(BigUInt(5), BigUInt(4), BigUInt(0))
          .ToDecimal(),
      "20");
}

TEST(DisjunctionEngineTest, DisjointAlternativesSum) {
  // A+ | SEQ(C, D) on Figure 6: A+ = 15 (4 a's), SEQ(C,D) = c2->d6, c5->d6
  // = 2. Total 17.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Or(
      Pattern::Plus(Pattern::Atom(0)),
      Pattern::Seq(Pattern::Atom(2), Pattern::Atom(3)));
  auto engine = MakeGreta(catalog.get(), CountQuery(std::move(p)));
  Stream stream = testing::Figure6Stream(catalog.get());
  EXPECT_EQ(SingleCount(RunEngine(engine.get(), stream)), "17");
}

TEST(DisjunctionEngineTest, OverlappingAlternativesRejected) {
  // A+ | SEQ(A+, B) cannot be proven disjoint... it actually is disjoint
  // (one requires B); but A+ | SEQ(A, A) overlaps (both match pure-A
  // trends) and must be rejected with a pointer to the combinators.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Or(
      Pattern::Plus(Pattern::Atom(0)),
      Pattern::Seq(Pattern::Atom(0), Pattern::Atom(0))));
  auto engine = GretaEngine::Create(catalog.get(), spec);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kUnsupported);
}

TEST(ConjunctionEngineTest, DisjointSidesMultiply) {
  // A+ & SEQ(C, D) on Figure 6: 15 * 2 = 30 paired trends.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::And(
      Pattern::Plus(Pattern::Atom(0)),
      Pattern::Seq(Pattern::Atom(2), Pattern::Atom(3)));
  auto engine = MakeGreta(catalog.get(), CountQuery(std::move(p)));
  Stream stream = testing::Figure6Stream(catalog.get());
  EXPECT_EQ(SingleCount(RunEngine(engine.get(), stream)), "30");
}

TEST(ConjunctionEngineTest, ZeroSideYieldsNoRow) {
  // B+ & SEQ(D, E): the second side never matches (no E after d6).
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::And(
      Pattern::Plus(Pattern::Atom(1)),
      Pattern::Seq(Pattern::Atom(3), Pattern::Atom(4)));
  auto engine = MakeGreta(catalog.get(), CountQuery(std::move(p)));
  Stream stream = testing::Figure6Stream(catalog.get());
  EXPECT_TRUE(RunEngine(engine.get(), stream).empty());
}

TEST(ConjunctionEngineTest, RejectsNonCountAggregates) {
  auto catalog = PaperCatalog();
  QuerySpec spec;
  spec.pattern = Pattern::And(Pattern::Plus(Pattern::Atom(0)),
                              Pattern::Atom(1));
  spec.aggs = {{AggKind::kSum, 0, 0, "SUM(A.attr)"}};
  auto engine = GretaEngine::Create(catalog.get(), spec);
  EXPECT_FALSE(engine.ok());
}

TEST(StarDesugarTest, SeqStarMatchesOracle) {
  // SEQ(A*, B) == SEQ(A+, B) | B on Figure 6: 23 + 3 = 26.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(Pattern::Star(Pattern::Atom(0)),
                              Pattern::Atom(1));
  Stream stream = testing::Figure6Stream(catalog.get());
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "26");
}

TEST(StarDesugarTest, OptionalMatchesOracle) {
  // SEQ(A?, B) on Figure 6: pairs (a, b) with a < b: b2:1, b7:3, b9:4 = 8,
  // plus bare b's = 3 -> 11.
  auto catalog = PaperCatalog();
  PatternPtr p = Pattern::Seq(Pattern::Opt(Pattern::Atom(0)),
                              Pattern::Atom(1));
  Stream stream = testing::Figure6Stream(catalog.get());
  std::vector<ResultRow> rows =
      ExpectMatchesOracle(catalog.get(), CountQuery(std::move(p)), stream);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "11");
}

TEST(StarDesugarTest, AggregatesCombineAcrossAlternatives) {
  // MIN/MAX/SUM over disjoint alternatives merge correctly.
  auto catalog = PaperCatalog();
  QuerySpec spec;
  spec.pattern = Pattern::Seq(Pattern::Star(Pattern::Atom(0)),
                              Pattern::Atom(1));
  AttrId attr = 0;
  spec.aggs = {
      {AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"},
      {AggKind::kMin, 0, attr, "MIN(A.attr)"},
      {AggKind::kSum, 0, attr, "SUM(A.attr)"},
  };
  Stream stream = testing::Figure12Stream(catalog.get());
  ExpectMatchesOracle(catalog.get(), spec, stream);
}

}  // namespace
}  // namespace greta
