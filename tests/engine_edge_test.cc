// Failure injection and edge cases of the engines: in-order enforcement,
// repeated Flush, irrelevant events, planner rejections, stats reporting,
// DNF behavior, and result drain semantics.

#include "baselines/sase.h"
#include "gtest/gtest.h"
#include "tests/test_util.h"

namespace greta {
namespace {

using testing::CountQuery;
using testing::MakeGreta;
using testing::PaperCatalog;

Event At(Catalog* catalog, const char* type, Ts time) {
  return EventBuilder(catalog, type, time)
      .Set("attr", static_cast<double>(time))
      .Build();
}

TEST(EngineEdgeTest, RejectsOutOfOrderEvents) {
  auto catalog = PaperCatalog();
  auto engine = MakeGreta(catalog.get(),
                          CountQuery(Pattern::Plus(Pattern::Atom(0))));
  ASSERT_TRUE(engine->Process(At(catalog.get(), "A", 10)).ok());
  Status s = engine->Process(At(catalog.get(), "A", 9));
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(EngineEdgeTest, TwoStepRejectsOutOfOrderEvents) {
  auto catalog = PaperCatalog();
  auto engine_or = SaseEngine::Create(
      catalog.get(), CountQuery(Pattern::Plus(Pattern::Atom(0))));
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(engine_or).value();
  ASSERT_TRUE(engine->Process(At(catalog.get(), "A", 10)).ok());
  EXPECT_FALSE(engine->Process(At(catalog.get(), "A", 9)).ok());
}

TEST(EngineEdgeTest, RepeatedFlushEmitsOnce) {
  auto catalog = PaperCatalog();
  auto engine = MakeGreta(catalog.get(),
                          CountQuery(Pattern::Plus(Pattern::Atom(0))));
  ASSERT_TRUE(engine->Process(At(catalog.get(), "A", 1)).ok());
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->TakeResults().size(), 1u);
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_TRUE(engine->TakeResults().empty());
}

TEST(EngineEdgeTest, TakeResultsDrains) {
  auto catalog = PaperCatalog();
  auto engine = MakeGreta(catalog.get(),
                          CountQuery(Pattern::Plus(Pattern::Atom(0))));
  ASSERT_TRUE(engine->Process(At(catalog.get(), "A", 1)).ok());
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_EQ(engine->TakeResults().size(), 1u);
  EXPECT_TRUE(engine->TakeResults().empty());
}

TEST(EngineEdgeTest, IrrelevantEventsAdvanceWatermark) {
  // Events of types outside the pattern still close windows.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.window = WindowSpec::Tumbling(5);
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  ASSERT_TRUE(engine->Process(At(catalog.get(), "A", 1)).ok());
  ASSERT_TRUE(engine->Process(At(catalog.get(), "E", 50)).ok());
  std::vector<ResultRow> rows = engine->TakeResults();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].wid, 0);
}

TEST(EngineEdgeTest, LargeTimestampsDoNotStallWindowLoop) {
  // First event at an astronomically large time: window ids jump straight
  // to it instead of iterating from zero.
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.window = WindowSpec::Tumbling(10);
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  Ts huge = Ts{1} << 50;
  ASSERT_TRUE(engine->Process(At(catalog.get(), "A", huge)).ok());
  ASSERT_TRUE(engine->Process(At(catalog.get(), "A", huge + 11)).ok());
  std::vector<ResultRow> rows = engine->TakeResults();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].aggs.count.ToDecimal(), "1");
}

TEST(EngineEdgeTest, PlannerRejectsTooManyWindowsPerEvent) {
  auto catalog = PaperCatalog();
  QuerySpec spec = CountQuery(Pattern::Plus(Pattern::Atom(0)));
  spec.window = WindowSpec::Sliding(1000, 1);  // k = 1000 > 64 default.
  auto engine = GretaEngine::Create(catalog.get(), spec);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kUnsupported);
}

TEST(EngineEdgeTest, PlannerRejectsMissingPattern) {
  auto catalog = PaperCatalog();
  QuerySpec spec;
  spec.aggs = {{AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"}};
  EXPECT_FALSE(GretaEngine::Create(catalog.get(), spec).ok());
}

TEST(EngineEdgeTest, StatsAreReported) {
  auto catalog = PaperCatalog();
  auto engine = MakeGreta(
      catalog.get(), CountQuery(Pattern::Plus(Pattern::Atom(0))));
  for (Ts t = 1; t <= 10; ++t) {
    ASSERT_TRUE(engine->Process(At(catalog.get(), "A", t)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  const EngineStats& stats = engine->stats();
  EXPECT_EQ(stats.events_processed, 10u);
  EXPECT_EQ(stats.vertices_stored, 10u);
  // A+ over 10 events: 45 pairwise edges.
  EXPECT_EQ(stats.edges_traversed, 45u);
  EXPECT_GT(stats.peak_bytes, 0u);
  EXPECT_FALSE(stats.dnf);
}

TEST(EngineEdgeTest, DnfEngineStaysInertAfterFlush) {
  auto catalog = PaperCatalog();
  TwoStepOptions options;
  options.work_budget = 10;
  auto engine_or = SaseEngine::Create(
      catalog.get(), CountQuery(Pattern::Plus(Pattern::Atom(0))), options);
  ASSERT_TRUE(engine_or.ok());
  auto engine = std::move(engine_or).value();
  for (Ts t = 1; t <= 20; ++t) {
    ASSERT_TRUE(engine->Process(At(catalog.get(), "A", t)).ok());
  }
  ASSERT_TRUE(engine->Flush().ok());
  EXPECT_TRUE(engine->stats().dnf);
  EXPECT_TRUE(engine->TakeResults().empty());
  // Still accepts (and ignores) traffic after DNF.
  EXPECT_TRUE(engine->Process(At(catalog.get(), "A", 21)).ok());
  EXPECT_TRUE(engine->Flush().ok());
  EXPECT_TRUE(engine->TakeResults().empty());
}

TEST(EngineEdgeTest, ManyPartitionsManyWindows) {
  // Smoke: 50 groups x sliding windows with purge; exercises the routing
  // maps and pane cleanup paths together.
  auto catalog = std::make_unique<Catalog>();
  catalog->DefineType("T", {{"g", Value::Kind::kInt}});
  QuerySpec spec;
  spec.pattern = Pattern::Plus(Pattern::Atom(0));
  spec.aggs = {{AggKind::kCountStar, kInvalidType, kInvalidAttr, "COUNT(*)"}};
  spec.group_by = {"g"};
  spec.window = WindowSpec::Sliding(4, 2);
  auto engine = MakeGreta(catalog.get(), std::move(spec));
  for (Ts t = 0; t < 200; ++t) {
    for (int64_t g = 0; g < 50; ++g) {
      ASSERT_TRUE(engine
                      ->Process(EventBuilder(catalog.get(), "T", t)
                                    .Set("g", g)
                                    .Build())
                      .ok());
    }
  }
  ASSERT_TRUE(engine->Flush().ok());
  std::vector<ResultRow> rows = engine->TakeResults();
  // 100 closed windows x 50 groups (the first window [0,4) is wid 0; the
  // last window containing t=199 is wid 99 with start 198).
  EXPECT_EQ(rows.size(), 100u * 50u);
  // Full windows hold 4 events per group: 2^4 - 1 trends.
  EXPECT_EQ(rows[70].aggs.count.ToDecimal(), "15");
}

TEST(EngineEdgeTest, ZeroAggregateQueriesRejected) {
  auto catalog = PaperCatalog();
  QuerySpec spec;
  spec.pattern = Pattern::Plus(Pattern::Atom(0));
  EXPECT_FALSE(GretaEngine::Create(catalog.get(), spec).ok());
}

}  // namespace
}  // namespace greta
