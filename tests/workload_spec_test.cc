// Workload spec loader: one JSON artifact declares queries + engine /
// sharing / runtime options (ROADMAP "Query DSL for workloads", file-format
// half). Exercises the happy path, defaults, strict unknown-key rejection,
// and that a loaded spec actually drives the sharded runtime.

#include <cstdio>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "workload/spec.h"

namespace greta {
namespace {

constexpr char kFullSpec[] = R"({
  "name": "grouped stock down-trends",
  "queries": [
    "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] AND S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds SLIDE 5 seconds",
    "RETURN sector, SUM(S.price) PATTERN Stock S+ WHERE [company, sector] AND S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds SLIDE 5 seconds"
  ],
  "engine": {
    "counter_mode": "modular",
    "semantics": "skip-till-any-match",
    "max_windows_per_event": 32
  },
  "sharing": {"enable_sharing": true, "min_cluster_size": 2},
  "adaptive": {
    "enabled": true,
    "observation_windows": 6,
    "hysteresis": 1.4,
    "min_windows_between_migrations": 10,
    "per_event_cost": 32.0
  },
  "runtime": {
    "num_shards": 4,
    "batch_size": 128,
    "queue_capacity": 8,
    "heartbeat_events": 512
  },
  "ingest": {
    "batch_size": 64,
    "sort_within_batch": true
  },
  "dataset": {
    "kind": "stock", "seed": 7, "rate": 40, "duration": 30,
    "num_companies": 8, "num_sectors": 3, "drift": 0.4,
    "bursts": [
      {"start": 10, "end": 20, "stock_multiplier": 8.0},
      {"start": 25, "end": 28, "stock_multiplier": 0.0,
       "halt_multiplier": 2.0}
    ]
  }
})";

TEST(WorkloadSpec, ParsesFullSpec) {
  Catalog catalog;
  auto spec = workload::ParseWorkloadSpec(kFullSpec, &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const workload::WorkloadSpec& w = spec.value();
  EXPECT_EQ(w.name, "grouped stock down-trends");
  ASSERT_EQ(w.queries.size(), 2u);
  EXPECT_EQ(w.query_texts.size(), 2u);
  EXPECT_EQ(w.options.engine.counter_mode, CounterMode::kModular);
  EXPECT_EQ(w.options.engine.max_windows_per_event, 32);
  EXPECT_TRUE(w.options.sharing.enable_sharing);
  EXPECT_EQ(w.runtime.num_shards, 4u);
  EXPECT_EQ(w.runtime.batch_size, 128u);
  EXPECT_EQ(w.runtime.queue_capacity, 8u);
  EXPECT_EQ(w.runtime.heartbeat_events, 512u);
  // The runtime block embeds the engine/sharing/adaptive options: one
  // source of truth for every executor.
  EXPECT_EQ(w.runtime.workload.engine.counter_mode, CounterMode::kModular);
  EXPECT_TRUE(w.options.adaptive.enabled);
  EXPECT_EQ(w.options.adaptive.observation_windows, 6u);
  EXPECT_DOUBLE_EQ(w.options.adaptive.hysteresis, 1.4);
  EXPECT_EQ(w.options.adaptive.min_windows_between_migrations, 10u);
  EXPECT_DOUBLE_EQ(w.options.adaptive.per_event_cost, 32.0);
  EXPECT_TRUE(w.runtime.workload.adaptive.enabled);
  EXPECT_EQ(w.ingest.batch_size, 64u);
  EXPECT_TRUE(w.ingest.sort_within_batch);
  ASSERT_TRUE(w.stock.has_value());
  EXPECT_EQ(w.stock->seed, 7u);
  EXPECT_EQ(w.stock->rate, 40);
  EXPECT_EQ(w.stock->num_companies, 8);
  ASSERT_EQ(w.stock->bursts.size(), 2u);
  EXPECT_EQ(w.stock->bursts[0].start, 10);
  EXPECT_EQ(w.stock->bursts[0].end, 20);
  EXPECT_DOUBLE_EQ(w.stock->bursts[0].stock_multiplier, 8.0);
  EXPECT_DOUBLE_EQ(w.stock->bursts[0].halt_multiplier, 1.0);
  EXPECT_DOUBLE_EQ(w.stock->bursts[1].stock_multiplier, 0.0);
  EXPECT_DOUBLE_EQ(w.stock->bursts[1].halt_multiplier, 2.0);
  // The stock dataset registered the types.
  EXPECT_NE(catalog.FindType("Stock"), kInvalidType);
}

TEST(WorkloadSpec, BurstScheduleShapesTheStream) {
  Catalog catalog;
  auto spec = workload::ParseWorkloadSpec(kFullSpec, &catalog);
  ASSERT_TRUE(spec.ok());
  Stream stream = GenerateStockStream(&catalog, *spec.value().stock);
  // Deterministic per seed: a second generation is identical.
  Catalog catalog2;
  Stream again = GenerateStockStream(&catalog2, *spec.value().stock);
  ASSERT_EQ(stream.size(), again.size());
  for (size_t i = 0; i < stream.size(); i += 97) {
    EXPECT_EQ(stream.events()[i].time, again.events()[i].time);
    EXPECT_EQ(stream.events()[i].type, again.events()[i].type);
  }
  // The 8x phase bursts and the silenced phase is silent.
  size_t quiet = 0;
  size_t burst = 0;
  size_t silenced = 0;
  for (const Event& e : stream.events()) {
    if (e.time < 10) ++quiet;
    if (e.time >= 10 && e.time < 20) ++burst;
    if (e.time >= 25 && e.time < 28 && e.type == catalog.FindType("Stock")) {
      ++silenced;
    }
  }
  EXPECT_EQ(quiet, 400u);    // 10s at base rate 40
  EXPECT_EQ(burst, 3200u);   // 10s at 8x
  EXPECT_EQ(silenced, 0u);   // stock_multiplier 0
}

TEST(WorkloadSpec, DefaultsWithoutOptionalBlocks) {
  Catalog catalog;
  RegisterStockTypes(&catalog);
  auto spec = workload::ParseWorkloadSpec(
      R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+ WITHIN 5 seconds"]})",
      &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().runtime.num_shards, 1u);
  EXPECT_EQ(spec.value().options.engine.counter_mode, CounterMode::kExact);
  EXPECT_FALSE(spec.value().stock.has_value());
}

TEST(WorkloadSpec, RejectsUnknownKeysAndBadValues) {
  Catalog catalog;
  RegisterStockTypes(&catalog);
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "runtime": {"shards": 4}})",
                   &catalog)
                   .ok())
      << "typo'd key must be rejected, not defaulted";
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "engine": {"counter_mode": "approximate"}})",
                   &catalog)
                   .ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec(R"({"queries": []})", &catalog)
                   .ok());
  EXPECT_FALSE(
      workload::ParseWorkloadSpec(R"({"queries": ["NOT A QUERY"]})", &catalog)
          .ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec("{", &catalog).ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec("{} trailing", &catalog).ok());
  // Strict keys and value validation of the adaptive block.
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "adaptive": {"enable": true}})",
                   &catalog)
                   .ok())
      << "typo'd adaptive key must be rejected";
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "adaptive": {"hysteresis": 0.5}})",
                   &catalog)
                   .ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "adaptive": {"observation_windows": 0}})",
                   &catalog)
                   .ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "adaptive": {"per_event_cost": -64.0}})",
                   &catalog)
                   .ok())
      << "a negative per-event cost would invert the cost comparison";
  // Burst phases: strict keys, sane ranges.
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "dataset": {"kind": "stock",
                                   "bursts": [{"begin": 0, "end": 5}]}})",
                   &catalog)
                   .ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "dataset": {"kind": "stock",
                                   "bursts": [{"start": 9, "end": 5}]}})",
                   &catalog)
                   .ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "dataset": {"kind": "stock",
                                   "bursts": [{"start": 0, "end": 5,
                                               "stock_multiplier": -1.0}]}})",
                   &catalog)
                   .ok());
}

TEST(WorkloadSpec, TelemetryBlockParsesStrictly) {
  Catalog catalog;
  RegisterStockTypes(&catalog);
  auto spec = workload::ParseWorkloadSpec(
      R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+ WITHIN 5 seconds"],
          "telemetry": {"enabled": false, "trace_capacity": 4096,
                        "sample_every": 8}})",
      &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_FALSE(spec.value().telemetry.enabled);
  EXPECT_EQ(spec.value().telemetry.trace_capacity, 4096u);
  EXPECT_EQ(spec.value().telemetry.sample_every, 8u);

  // Defaults without the block: enabled, standard ring.
  auto defaults = workload::ParseWorkloadSpec(
      R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+ WITHIN 5 seconds"]})",
      &catalog);
  ASSERT_TRUE(defaults.ok());
  EXPECT_TRUE(defaults.value().telemetry.enabled);
  EXPECT_EQ(defaults.value().telemetry.trace_capacity, 1024u);
  EXPECT_EQ(defaults.value().telemetry.sample_every, 1u);

  // Strict keys and value validation.
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "telemetry": {"enable": true}})",
                   &catalog)
                   .ok())
      << "typo'd telemetry key must be rejected";
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "telemetry": {"sample_every": 0}})",
                   &catalog)
                   .ok())
      << "a zero sampling period would divide by zero at every use";
}

TEST(WorkloadSpec, IngestBlockParsesStrictly) {
  Catalog catalog;
  RegisterStockTypes(&catalog);
  auto spec = workload::ParseWorkloadSpec(
      R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+ WITHIN 5 seconds"],
          "ingest": {"batch_size": 512, "sort_within_batch": true}})",
      &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().ingest.batch_size, 512u);
  EXPECT_TRUE(spec.value().ingest.sort_within_batch);

  // batch_size 0 is valid: it selects the scalar per-event Process path.
  auto scalar = workload::ParseWorkloadSpec(
      R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+ WITHIN 5 seconds"],
          "ingest": {"batch_size": 0}})",
      &catalog);
  ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
  EXPECT_EQ(scalar.value().ingest.batch_size, 0u);

  // Defaults without the block.
  auto defaults = workload::ParseWorkloadSpec(
      R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+ WITHIN 5 seconds"]})",
      &catalog);
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.value().ingest.batch_size, 256u);
  EXPECT_FALSE(defaults.value().ingest.sort_within_batch);

  // Strict keys and value validation.
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "ingest": {"batchsize": 64}})",
                   &catalog)
                   .ok())
      << "typo'd ingest key must be rejected";
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "ingest": {"batch_size": -5}})",
                   &catalog)
                   .ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "ingest": {"sort_within_batch": 1}})",
                   &catalog)
                   .ok())
      << "sort_within_batch must be a boolean";
}

TEST(WorkloadSpec, LoadedSpecDrivesShardedRuntime) {
  Catalog catalog;
  auto spec = workload::ParseWorkloadSpec(kFullSpec, &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  workload::WorkloadSpec& w = spec.value();
  ASSERT_TRUE(w.stock.has_value());
  Stream stream = GenerateStockStream(&catalog, *w.stock);

  auto rt = runtime::ShardedRuntime::Create(&catalog, w.queries, w.runtime);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  EXPECT_EQ(rt.value()->num_shards(), 4u);
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(rt.value()->Process(e).ok());
  }
  ASSERT_TRUE(rt.value()->Flush().ok());
  size_t rows = rt.value()->TakeResults().size();
  EXPECT_GT(rows, 0u);
}

TEST(WorkloadSpec, LoadsFromFile) {
  Catalog catalog;
  std::string path = ::testing::TempDir() + "/greta_workload_spec.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(kFullSpec, 1, sizeof(kFullSpec) - 1, f);
  std::fclose(f);
  auto spec = workload::LoadWorkloadSpecFile(path, &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().queries.size(), 2u);
  std::remove(path.c_str());

  EXPECT_FALSE(
      workload::LoadWorkloadSpecFile("/nonexistent/x.json", &catalog).ok());
}

}  // namespace
}  // namespace greta
