// Workload spec loader: one JSON artifact declares queries + engine /
// sharing / runtime options (ROADMAP "Query DSL for workloads", file-format
// half). Exercises the happy path, defaults, strict unknown-key rejection,
// and that a loaded spec actually drives the sharded runtime.

#include <cstdio>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "workload/spec.h"

namespace greta {
namespace {

constexpr char kFullSpec[] = R"({
  "name": "grouped stock down-trends",
  "queries": [
    "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] AND S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds SLIDE 5 seconds",
    "RETURN sector, SUM(S.price) PATTERN Stock S+ WHERE [company, sector] AND S.price > NEXT(S).price GROUP-BY sector WITHIN 10 seconds SLIDE 5 seconds"
  ],
  "engine": {
    "counter_mode": "modular",
    "semantics": "skip-till-any-match",
    "max_windows_per_event": 32
  },
  "sharing": {"enable_sharing": true, "min_cluster_size": 2},
  "runtime": {
    "num_shards": 4,
    "batch_size": 128,
    "queue_capacity": 8,
    "heartbeat_events": 512
  },
  "dataset": {
    "kind": "stock", "seed": 7, "rate": 40, "duration": 30,
    "num_companies": 8, "num_sectors": 3, "drift": 0.4
  }
})";

TEST(WorkloadSpec, ParsesFullSpec) {
  Catalog catalog;
  auto spec = workload::ParseWorkloadSpec(kFullSpec, &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  const workload::WorkloadSpec& w = spec.value();
  EXPECT_EQ(w.name, "grouped stock down-trends");
  ASSERT_EQ(w.queries.size(), 2u);
  EXPECT_EQ(w.query_texts.size(), 2u);
  EXPECT_EQ(w.options.engine.counter_mode, CounterMode::kModular);
  EXPECT_EQ(w.options.engine.max_windows_per_event, 32);
  EXPECT_TRUE(w.options.sharing.enable_sharing);
  EXPECT_EQ(w.runtime.num_shards, 4u);
  EXPECT_EQ(w.runtime.batch_size, 128u);
  EXPECT_EQ(w.runtime.queue_capacity, 8u);
  EXPECT_EQ(w.runtime.heartbeat_events, 512u);
  // The runtime block embeds the engine/sharing options: one source of
  // truth for every executor.
  EXPECT_EQ(w.runtime.workload.engine.counter_mode, CounterMode::kModular);
  ASSERT_TRUE(w.stock.has_value());
  EXPECT_EQ(w.stock->seed, 7u);
  EXPECT_EQ(w.stock->rate, 40);
  EXPECT_EQ(w.stock->num_companies, 8);
  // The stock dataset registered the types.
  EXPECT_NE(catalog.FindType("Stock"), kInvalidType);
}

TEST(WorkloadSpec, DefaultsWithoutOptionalBlocks) {
  Catalog catalog;
  RegisterStockTypes(&catalog);
  auto spec = workload::ParseWorkloadSpec(
      R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+ WITHIN 5 seconds"]})",
      &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().runtime.num_shards, 1u);
  EXPECT_EQ(spec.value().options.engine.counter_mode, CounterMode::kExact);
  EXPECT_FALSE(spec.value().stock.has_value());
}

TEST(WorkloadSpec, RejectsUnknownKeysAndBadValues) {
  Catalog catalog;
  RegisterStockTypes(&catalog);
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "runtime": {"shards": 4}})",
                   &catalog)
                   .ok())
      << "typo'd key must be rejected, not defaulted";
  EXPECT_FALSE(workload::ParseWorkloadSpec(
                   R"({"queries": ["RETURN COUNT(*) PATTERN Stock S+"],
                       "engine": {"counter_mode": "approximate"}})",
                   &catalog)
                   .ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec(R"({"queries": []})", &catalog)
                   .ok());
  EXPECT_FALSE(
      workload::ParseWorkloadSpec(R"({"queries": ["NOT A QUERY"]})", &catalog)
          .ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec("{", &catalog).ok());
  EXPECT_FALSE(workload::ParseWorkloadSpec("{} trailing", &catalog).ok());
}

TEST(WorkloadSpec, LoadedSpecDrivesShardedRuntime) {
  Catalog catalog;
  auto spec = workload::ParseWorkloadSpec(kFullSpec, &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  workload::WorkloadSpec& w = spec.value();
  ASSERT_TRUE(w.stock.has_value());
  Stream stream = GenerateStockStream(&catalog, *w.stock);

  auto rt = runtime::ShardedRuntime::Create(&catalog, w.queries, w.runtime);
  ASSERT_TRUE(rt.ok()) << rt.status().ToString();
  EXPECT_EQ(rt.value()->num_shards(), 4u);
  for (const Event& e : stream.events()) {
    ASSERT_TRUE(rt.value()->Process(e).ok());
  }
  ASSERT_TRUE(rt.value()->Flush().ok());
  size_t rows = rt.value()->TakeResults().size();
  EXPECT_GT(rows, 0u);
}

TEST(WorkloadSpec, LoadsFromFile) {
  Catalog catalog;
  std::string path = ::testing::TempDir() + "/greta_workload_spec.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(kFullSpec, 1, sizeof(kFullSpec) - 1, f);
  std::fclose(f);
  auto spec = workload::LoadWorkloadSpecFile(path, &catalog);
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().queries.size(), 2u);
  std::remove(path.c_str());

  EXPECT_FALSE(
      workload::LoadWorkloadSpecFile("/nonexistent/x.json", &catalog).ok());
}

}  // namespace
}  // namespace greta
