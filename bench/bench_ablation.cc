// Ablations of the two load-bearing runtime design choices (DESIGN.md
// §2.1):
//  (1) tree-indexed predecessor range queries (Section 7 Vertex Trees) vs.
//      scanning every stored predecessor and filtering;
//  (2) one shared GRETA graph across overlapping sliding windows (Section
//      6, Figure 9(b)) vs. naive per-window sub-graph replication (9(a)).

#include <cstdio>

#include "bench_util/harness.h"
#include "storage/window.h"
#include "workload/linear_road.h"

namespace greta::bench {
namespace {

RunResult RunGreta(const Catalog& catalog, const QuerySpec& spec,
                   const Stream& stream, bool tree_ranges) {
  EngineOptions options;
  options.counter_mode = CounterMode::kModular;
  options.enable_tree_ranges = tree_ranges;
  auto engine_or = GretaEngine::Create(&catalog, spec.Clone(), options);
  GRETA_CHECK(engine_or.ok());
  auto engine = std::move(engine_or).value();
  return RunStream(engine.get(), stream);
}

void TreeVersusScan(const Flags& flags) {
  int64_t events = flags.GetInt("events", 20000);
  double selectivity = flags.GetDouble("selectivity", 0.1);
  Ts within = flags.GetInt("within", 10);

  std::printf("\n--- Ablation 1: Vertex-Tree range query vs. full scan ---\n");
  std::printf(
      "Low-selectivity edge predicate (%.0f%%): the tree touches only "
      "matching predecessors; the scan touches all of them.\n\n",
      selectivity * 100);
  Table table({"predecessor lookup", "time", "throughput", "edges"});
  Catalog catalog;
  LinearRoadConfig config;
  config.num_vehicles = 5;
  config.rate = static_cast<int>(events / within);
  config.duration = within;
  Stream stream = GenerateLinearRoadStream(&catalog, config);
  auto spec = MakeQ3Selectivity(&catalog, within, within, selectivity);
  GRETA_CHECK(spec.ok());
  for (bool tree : {true, false}) {
    RunResult r = RunGreta(catalog, spec.value(), stream, tree);
    table.AddRow({tree ? "B+-tree range query" : "full scan + filter",
                  FormatMillis(r.total_seconds * 1e3), r.ThroughputCell(),
                  FormatCount(static_cast<double>(r.stats.edges_traversed))});
  }
  table.Print();
}

void SharedVersusReplicated(const Flags& flags) {
  int64_t events = flags.GetInt("events", 4000);
  Ts within = flags.GetInt("within", 12);
  Ts slide = flags.GetInt("slide", 2);

  std::printf(
      "\n--- Ablation 2: shared graph across windows vs. replication ---\n");
  std::printf(
      "WITHIN %lld SLIDE %lld (every event in %d windows): sharing stores "
      "each event once with k aggregate slots; replication rebuilds the "
      "sub-graph per window (Figure 9).\n\n",
      static_cast<long long>(within), static_cast<long long>(slide),
      MaxWindowsPerEvent(WindowSpec::Sliding(within, slide)));

  Catalog catalog;
  LinearRoadConfig config;
  config.num_vehicles = 5;
  config.rate = static_cast<int>(events / within);
  config.duration = within * 3;
  Stream stream = GenerateLinearRoadStream(&catalog, config);
  auto spec = MakeQ3Selectivity(&catalog, within, slide, 0.2);
  GRETA_CHECK(spec.ok());

  Table table({"strategy", "time", "vertices stored", "peak mem"});

  RunResult shared = RunGreta(catalog, spec.value(), stream, true);
  table.AddRow({"shared graph (GRETA)",
                FormatMillis(shared.total_seconds * 1e3),
                FormatCount(static_cast<double>(shared.stats.vertices_stored)),
                FormatBytes(static_cast<double>(shared.peak_memory_bytes))});

  // Replication: run one unbounded-window engine per window over that
  // window's sub-stream; costs add up across windows.
  double total_seconds = 0.0;
  size_t vertices = 0;
  size_t peak = 0;
  WindowSpec w = WindowSpec::Sliding(within, slide);
  auto unbounded = MakeQ3Selectivity(&catalog, within, slide, 0.2);
  GRETA_CHECK(unbounded.ok());
  QuerySpec per_window = std::move(unbounded).value();
  per_window.window = WindowSpec::Unbounded();
  for (WindowId wid = 0; wid <= LastWindowOf(stream.max_time(), w); ++wid) {
    Stream sub;
    for (const Event& e : stream.events()) {
      if (e.time >= WindowStartTime(wid, w) &&
          e.time < WindowCloseTime(wid, w)) {
        sub.Append(e);
      }
    }
    if (sub.empty()) continue;
    EngineOptions options;
    options.counter_mode = CounterMode::kModular;
    auto engine_or = GretaEngine::Create(&catalog, per_window.Clone(),
                                         options);
    GRETA_CHECK(engine_or.ok());
    auto engine = std::move(engine_or).value();
    RunResult r = RunStream(engine.get(), sub);
    total_seconds += r.total_seconds;
    vertices += r.stats.vertices_stored;
    peak += r.peak_memory_bytes;  // Windows coexist in a real deployment.
  }
  table.AddRow({"replicated per window", FormatMillis(total_seconds * 1e3),
                FormatCount(static_cast<double>(vertices)),
                FormatBytes(static_cast<double>(peak))});
  table.Print();
}

int Run(const Flags& flags) {
  PrintHeader("Ablation benches",
              "Design choices called out in DESIGN.md §2.1.",
              "Tree ranges beat scans at low selectivity; the shared graph "
              "stores each event once instead of k times.");
  TreeVersusScan(flags);
  SharedVersusReplicated(flags);
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
