// Theorem 8.1 / 8.2 verification: GRETA's time is (at most) quadratic and
// its space linear in the number of events per window. Prints the raw
// numbers plus normalized columns — time/n^2 and bytes/n should stay flat
// or fall as n grows.

#include <cstdio>

#include "bench_util/harness.h"
#include "workload/linear_road.h"

namespace greta::bench {
namespace {

int Run(const Flags& flags) {
  int64_t min_events = flags.GetInt("min-events", 1000);
  int64_t max_events = flags.GetInt("max-events", 32000);
  double selectivity = flags.GetDouble("selectivity", 0.5);
  Ts within = flags.GetInt("within", 10);

  PrintHeader(
      "Complexity check (Theorems 8.1 / 8.2)",
      "GRETA only: Position P+ with a 50% edge predicate, one tumbling "
      "window; n doubles each row.",
      "edges grows ~4x per doubling (quadratic, optimal per Thm 8.2), "
      "time/n^2 stays roughly flat, peak bytes/n stays roughly flat "
      "(linear space).");

  Table table({"events n", "time", "edges", "edges/n^2", "time/n^2 (ns)",
               "peak mem", "bytes/n"});
  for (int64_t n = min_events; n <= max_events; n *= 2) {
    Catalog catalog;
    LinearRoadConfig config;
    config.num_vehicles = 10;
    config.rate = static_cast<int>(n / within);
    config.duration = within;
    Stream stream = GenerateLinearRoadStream(&catalog, config);
    auto spec = MakeQ3Selectivity(&catalog, within, within, selectivity);
    if (!spec.ok()) return 1;
    EngineOptions options;
    options.counter_mode = CounterMode::kModular;
    auto engine_or = GretaEngine::Create(&catalog, spec.value(), options);
    if (!engine_or.ok()) return 1;
    auto engine = std::move(engine_or).value();
    RunResult r = RunStream(engine.get(), stream);
    double dn = static_cast<double>(n);
    table.AddRow({std::to_string(n), FormatMillis(r.total_seconds * 1e3),
                  FormatCount(static_cast<double>(r.stats.edges_traversed)),
                  FormatCount(r.stats.edges_traversed / (dn * dn)),
                  FormatCount(r.total_seconds * 1e9 / (dn * dn)),
                  FormatBytes(static_cast<double>(r.peak_memory_bytes)),
                  FormatCount(r.peak_memory_bytes / dn)});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
