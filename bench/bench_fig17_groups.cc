// Figure 17 reproduction: positive patterns on the cluster monitoring
// stream, varying the number of event trend groups (job x mapper
// partitions) at a fixed total number of events per window. Trends are
// constructed per group, so the two-step baselines get *cheaper* with more
// groups while GRETA stays flat.

#include <cstdio>

#include "bench_util/harness.h"
#include "workload/cluster.h"

namespace greta::bench {
namespace {

int Run(const Flags& flags) {
  int64_t events = flags.GetInt("events", 4000);
  int64_t budget = flags.GetInt("budget", 100'000'000);
  Ts within = flags.GetInt("within", 10);
  int64_t windows = flags.GetInt("windows", 3);
  double factor = flags.GetDouble("factor", 1.12);

  PrintHeader(
      "Figure 17: number of event trend groups, cluster data",
      "Positive Q2 variation (Measurement M+ per job/mapper, increasing "
      "load, SUM(M.cpu)) with a fixed event count split across 1..64 "
      "groups.",
      "Two-step latency/memory fall exponentially as groups increase "
      "(shorter trends per group) and their throughput rises; GRETA "
      "performs the same regardless since trends are never constructed.");

  Table latency({"groups", "GRETA", "SASE", "CET", "Flink-flat"});
  Table memory({"groups", "GRETA", "SASE", "CET", "Flink-flat"});
  Table throughput({"groups", "GRETA", "SASE", "CET", "Flink-flat"});

  for (int64_t groups : {1, 4, 16, 64}) {
    Catalog catalog;
    ClusterConfig config;
    // groups = num_jobs * num_mappers partitions.
    config.num_jobs = static_cast<int>(groups <= 8 ? 1 : groups / 8);
    config.num_mappers = static_cast<int>(groups <= 8 ? groups : 8);
    config.rate = static_cast<int>(events / within);
    config.duration = within * windows;
    config.restart_probability = 0.0;  // Keep Start/End minimal.
    Stream stream = GenerateClusterStream(&catalog, config);
    auto spec = MakeQ2Positive(&catalog, within, within, factor);
    if (!spec.ok()) {
      std::fprintf(stderr, "Q2: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> lat{std::to_string(groups)};
    std::vector<std::string> mem{std::to_string(groups)};
    std::vector<std::string> thr{std::to_string(groups)};
    for (auto& engine :
         MakeAllEngines(&catalog, spec.value(), static_cast<size_t>(budget))) {
      RunResult r = RunStream(engine.get(), stream);
      lat.push_back(r.LatencyCell());
      mem.push_back(r.MemoryCell());
      thr.push_back(r.ThroughputCell());
    }
    latency.AddRow(std::move(lat));
    memory.AddRow(std::move(mem));
    throughput.AddRow(std::move(thr));
  }
  std::printf("(a) Latency (peak)\n");
  latency.Print();
  std::printf("\n(b) Memory (peak)\n");
  memory.Print();
  std::printf("\n(c) Throughput\n");
  throughput.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
