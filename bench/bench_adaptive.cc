// Adaptive sharing benchmark: static always-share vs never-share vs the
// stats-driven re-planning loop (src/sharing/adaptive_planner.h) on a
// BURSTY stock workload, plus a per-phase ORACLE lower bound.
//
// The workload is a window-diverse partial-sharing cluster (same Kleene
// core `Stock S+`, WITHINs 2/2/4/4/8 at SLIDE 2): under sparse load the
// merged runtime wins (one engine pass per event instead of five); under a
// burst it loses (the shared core scans and folds over the UNION range,
// a quadratic penalty the short-window queries don't pay when dedicated).
// The stream alternates quiet and burst phases, so each static plan has a
// phase where it is the wrong plan; the adaptive loop migrates the cluster
// at window boundaries and should beat the WORSE static plan by >= 1.3x
// (the acceptance bar) while every run's rows stay equivalent.
//
// The oracle replays each phase under the better static plan with zero
// observation lag and zero handover cost — the re-planning loop's upper
// bound, not a real executor.
//
// Prints the fixed-width table plus one JSON row per engine config:
//   {"bench":"adaptive","config":"adaptive","events_per_sec":...,
//    "speedup_vs_worst":...,"migrations":...,"rows_match":true}
// (the `bench/config/events_per_sec` triple is what scripts/perf_smoke.py
// diffs against bench/baselines/BENCH_adaptive_baseline.json).
//
// Flags: --rate (quiet events/s), --burst-mult, --phase (seconds per
// phase), --phases (quiet/burst pairs), --companies/--sectors,
// --reps (best-of), plus the adaptive knobs --obs-windows / --hysteresis /
// --cooldown / --per-event-cost.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "bench_util/metrics.h"
#include "query/parser.h"
#include "sharing/shared_engine.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct PhaseSpan {
  Ts start = 0;
  Ts end = 0;
  bool burst = false;
};

struct RunOutput {
  double seconds = 0.0;
  std::vector<double> phase_seconds;
  size_t migrations = 0;
  size_t peak_memory_bytes = 0;
  std::vector<std::vector<ResultRow>> rows;  // per query
};

RunOutput RunOnce(const Catalog* catalog,
                  const std::vector<QuerySpec>& workload,
                  const Stream& stream,
                  const sharing::SharedEngineOptions& options,
                  const std::vector<PhaseSpan>& phases) {
  auto engine = sharing::SharedWorkloadEngine::Create(catalog, workload,
                                                      options);
  GRETA_CHECK(engine.ok());
  sharing::SharedWorkloadEngine& e = *engine.value();
  RunOutput out;
  out.rows.resize(workload.size());
  out.phase_seconds.resize(phases.size(), 0.0);

  size_t phase = 0;
  Clock::time_point phase_start = Clock::now();
  Clock::time_point start = phase_start;
  for (const Event& ev : stream.events()) {
    while (phase + 1 < phases.size() && ev.time >= phases[phase].end) {
      Clock::time_point now = Clock::now();
      out.phase_seconds[phase] +=
          std::chrono::duration<double>(now - phase_start).count();
      phase_start = now;
      ++phase;
    }
    GRETA_CHECK(e.Process(ev).ok());
  }
  GRETA_CHECK(e.Flush().ok());
  Clock::time_point end = Clock::now();
  out.phase_seconds[phase] +=
      std::chrono::duration<double>(end - phase_start).count();
  out.seconds = std::chrono::duration<double>(end - start).count();
  for (size_t q = 0; q < workload.size(); ++q) {
    out.rows[q] = e.TakeResults(q);
  }
  out.migrations = e.total_migrations();
  out.peak_memory_bytes = e.stats().peak_bytes;
  return out;
}

RunOutput Best(const Catalog* catalog, const std::vector<QuerySpec>& workload,
               const Stream& stream,
               const sharing::SharedEngineOptions& options,
               const std::vector<PhaseSpan>& phases, int reps) {
  RunOutput best;
  for (int r = 0; r < reps; ++r) {
    RunOutput out = RunOnce(catalog, workload, stream, options, phases);
    if (r == 0 || out.seconds < best.seconds) best = std::move(out);
  }
  return best;
}

bool RowsMatch(const Catalog* catalog,
               const std::vector<QuerySpec>& workload,
               const sharing::SharedWorkloadEngine& reference_plan_source,
               const RunOutput& a, const RunOutput& b) {
  for (size_t q = 0; q < workload.size(); ++q) {
    std::string diff;
    if (!RowsEquivalent(a.rows[q], b.rows[q],
                        reference_plan_source.agg_plan_for(q), &diff)) {
      std::printf("row mismatch in query %zu: %s\n", q, diff.c_str());
      return false;
    }
  }
  return true;
}

int Run(const Flags& flags) {
  // Defaults tuned so the regimes persist well past the union WITHIN (8s):
  // re-planning can only pay for its observation lag plus the handover's
  // double processing when the load regime outlives the window span —
  // Hamlet's burstiness premise.
  int64_t rate = flags.GetInt("rate", 60);
  double burst_mult = flags.GetDouble("burst-mult", 16.0);
  Ts phase_len = flags.GetInt("phase", 60);
  int64_t phase_pairs = flags.GetInt("phases", 2);
  int64_t companies = flags.GetInt("companies", 4);
  int64_t sectors = flags.GetInt("sectors", 2);
  int reps = static_cast<int>(flags.GetInt("reps", 2));

  // Single-step observation + a longer cooldown: the phase transitions
  // are clean regime changes, so reacting on one window step keeps the
  // observation lag at one slide while the cooldown still guards against
  // flapping near the cost crossover.
  sharing::AdaptiveOptions adaptive;
  adaptive.enabled = true;
  adaptive.observation_windows =
      static_cast<size_t>(flags.GetInt("obs-windows", 1));
  adaptive.hysteresis = flags.GetDouble("hysteresis", 1.2);
  adaptive.min_windows_between_migrations =
      static_cast<size_t>(flags.GetInt("cooldown", 6));
  adaptive.per_event_cost = flags.GetDouble("per-event-cost", 64.0);

  Catalog catalog;
  RegisterStockTypes(&catalog);
  std::vector<QuerySpec> workload;
  // One partial cluster of five queries: same Kleene core (Stock S+), core
  // predicate, keys and slide; diverse suffixes and WITHINs, so exact
  // clustering merges nothing. Four short-window queries ride a union
  // window four times their own — the burst penalty — while dedicated
  // execution pays five engine passes per event — the quiet penalty.
  const char* kQueries[] = {
      "RETURN sector, COUNT(*), SUM(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 2 seconds SLIDE 2 seconds",
      "RETURN sector, COUNT(*), MIN(S.price) PATTERN SEQ(Stock S+, Halt H) "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 2 seconds SLIDE 2 seconds",
      "RETURN sector, COUNT(*), AVG(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 4 seconds SLIDE 2 seconds",
      "RETURN sector, COUNT(*), MAX(S.price) PATTERN SEQ(Stock S+, Halt H) "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 4 seconds SLIDE 2 seconds",
      "RETURN sector, COUNT(*), SUM(S.volume) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 8 seconds SLIDE 2 seconds",
  };
  for (const char* q : kQueries) {
    auto spec = ParseQuery(q, &catalog);
    GRETA_CHECK(spec.ok());
    workload.push_back(std::move(spec).value());
  }

  // Alternating quiet/burst phases, starting and ending quiet (the tail
  // gives the adaptive loop a chance to re-merge).
  StockConfig config;
  config.seed = 1234;
  config.rate = static_cast<int>(rate);
  config.num_companies = static_cast<int>(companies);
  config.num_sectors = static_cast<int>(sectors);
  config.drift = 0.0;
  config.halt_probability = 0.05;  // the SEQ(.., Halt) suffixes need ends
  std::vector<PhaseSpan> phases;
  Ts t = 0;
  for (int64_t p = 0; p < phase_pairs; ++p) {
    phases.push_back({t, t + phase_len, false});
    t += phase_len;
    config.bursts.push_back({t, t + phase_len, burst_mult, 1.0});
    phases.push_back({t, t + phase_len, true});
    t += phase_len;
  }
  phases.push_back({t, t + phase_len, false});
  t += phase_len;
  config.duration = t;
  Stream stream = GenerateStockStream(&catalog, config);

  PrintHeader(
      "Adaptive sharing: observe -> re-plan vs the static plans",
      "Window-diverse partial cluster (WITHIN 2/4/8, SLIDE 2) on a bursty "
      "stream (" + std::to_string(rate) + " ev/s quiet, x" +
          std::to_string(static_cast<int>(burst_mult)) + " bursts): "
          "always-share pays the union-range penalty in bursts, never-share "
          "pays 5x engine passes when quiet.",
      "The adaptive loop should track the better plan per phase and beat "
      "the WORSE static plan by >= 1.3x; rows stay equivalent everywhere.");

  sharing::SharedEngineOptions share_options;  // static always-share
  sharing::SharedEngineOptions never_options;
  never_options.sharing.enable_sharing = false;
  sharing::SharedEngineOptions adaptive_options;
  adaptive_options.adaptive = adaptive;

  RunOutput always = Best(&catalog, workload, stream, share_options, phases,
                          reps);
  RunOutput never = Best(&catalog, workload, stream, never_options, phases,
                         reps);
  RunOutput adaptive_run = Best(&catalog, workload, stream, adaptive_options,
                                phases, reps);

  auto plan_source =
      sharing::SharedWorkloadEngine::Create(&catalog, workload,
                                            share_options);
  GRETA_CHECK(plan_source.ok());
  bool match =
      RowsMatch(&catalog, workload, *plan_source.value(), always, never) &&
      RowsMatch(&catalog, workload, *plan_source.value(), always,
                adaptive_run);

  // Oracle: per phase, the better static plan with zero lag/handover.
  double oracle_seconds = 0.0;
  for (size_t p = 0; p < phases.size(); ++p) {
    oracle_seconds += std::min(always.phase_seconds[p],
                               never.phase_seconds[p]);
  }

  const double events = static_cast<double>(stream.size());
  const double worst_seconds = std::max(always.seconds, never.seconds);
  const double speedup_vs_worst =
      adaptive_run.seconds > 0.0 ? worst_seconds / adaptive_run.seconds : 0.0;

  struct Row {
    const char* config;
    const RunOutput* out;
    double seconds;
    size_t migrations;
  };
  const Row rows[] = {
      {"always-share", &always, always.seconds, 0},
      {"never-share", &never, never.seconds, 0},
      {"adaptive", &adaptive_run, adaptive_run.seconds,
       adaptive_run.migrations},
      {"oracle", nullptr, oracle_seconds, 0},
  };

  Table table({"config", "events/s", "total s", "vs worst static",
               "migrations", "peak mem"});
  for (const Row& row : rows) {
    double eps = row.seconds > 0.0 ? events / row.seconds : 0.0;
    double vs_worst = row.seconds > 0.0 ? worst_seconds / row.seconds : 0.0;
    char vs_cell[32];
    std::snprintf(vs_cell, sizeof(vs_cell), "%.3fx", vs_worst);
    char secs[32];
    std::snprintf(secs, sizeof(secs), "%.3f", row.seconds);
    table.AddRow({row.config, FormatCount(eps), secs, vs_cell,
                  std::to_string(row.migrations),
                  row.out != nullptr
                      ? FormatBytes(
                            static_cast<double>(row.out->peak_memory_bytes))
                      : "-"});
    std::printf(
        "{\"bench\":\"adaptive\",\"config\":\"%s\",\"events_per_sec\":%.1f,"
        "\"total_seconds\":%.4f,\"speedup_vs_worst\":%.3f,"
        "\"migrations\":%zu,\"rows_match\":%s}\n",
        row.config, eps, row.seconds, vs_worst, row.migrations,
        match ? "true" : "false");
  }

  std::printf("\nBursty workload: static plans vs the re-planning loop "
              "(oracle = per-phase best static, zero lag)\n");
  table.Print();
  std::printf("\nadaptive vs worse static plan: %.3fx (acceptance bar "
              "1.3x); migrations: %zu\n",
              speedup_vs_worst, adaptive_run.migrations);

  if (!match) {
    std::printf("ERROR: rows diverge between engine configurations\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  greta::bench::Flags flags(argc, argv);
  return greta::bench::Run(flags);
}
