// Hot-path benchmark: per-event insert cost of the GRETA engine across the
// propagation-kernel grid (COUNT(*)-modular fast kernel, COUNT(*)-exact,
// generic attribute aggregates, multi-query shared cells) on the stock
// stream. Reports events/sec and peak tracked bytes per configuration, and
// emits one JSON row per configuration for the BENCH_core.json trajectory
// artifact (CI uploads it next to BENCH_sharing.json; the perf-smoke step
// diffs it against bench/baselines/BENCH_core_baseline.json).
//
// Flags: --rate/--duration size the stream, --within/--slide the window,
// --factor the Q1 predicate selectivity, --reps best-of repetitions,
// --batch the columnar ingest batch size (0 = per-event Process calls).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "bench_util/metrics.h"
#include "common/simd.h"
#include "query/parser.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

struct Config {
  const char* name;       // JSON config id
  const char* aggs;       // RETURN list
  CounterMode mode = CounterMode::kModular;
  int num_queries = 1;    // >1: CreateMulti with this many query slots
  bool specialized = true;
  bool simd = true;       // false: force the scalar kernel twins
};

QuerySpec MakeQuery(Catalog* catalog, const Config& config, Ts within,
                    Ts slide, double factor, int variant) {
  const char* agg_variants[] = {"COUNT(*)", "SUM(S.price)",
                                "MIN(S.price), MAX(S.price)",
                                "AVG(S.volume)"};
  std::string text = "RETURN sector, " +
                     std::string(config.num_queries > 1
                                     ? agg_variants[variant % 4]
                                     : config.aggs) +
                     " PATTERN Stock S+ WHERE [company, sector] AND "
                     "S.price * " +
                     std::to_string(factor) +
                     " > NEXT(S).price GROUP-BY sector WITHIN " +
                     std::to_string(within) + " seconds SLIDE " +
                     std::to_string(slide) + " seconds";
  auto spec = ParseQuery(text, catalog);
  GRETA_CHECK(spec.ok());
  return std::move(spec).value();
}

int Run(const Flags& flags) {
  int64_t rate = flags.GetInt("rate", 800);
  Ts duration = flags.GetInt("duration", 60);
  Ts within = flags.GetInt("within", 10);
  Ts slide = flags.GetInt("slide", 10);
  double factor = flags.GetDouble("factor", 1.0);
  int64_t reps = flags.GetInt("reps", 3);
  IngestOptions ingest;
  ingest.batch_size = static_cast<size_t>(flags.GetInt("batch", 256));

  PrintHeader(
      "Hot path: per-event insert cost across propagation kernels",
      "Q1-shaped Kleene queries on the stock stream; one row per kernel "
      "configuration (see src/core/README.md for the dispatch table).",
      "count_modular (the specialized fast kernel) leads; count_generic "
      "(same query, kernels disabled) trails it; attribute aggregates pay "
      "for their extra cell state; multi4 amortizes one graph pass over "
      "four query slots.");

  Catalog catalog;
  StockConfig stock;
  stock.rate = static_cast<int>(rate);
  stock.duration = duration;
  Stream stream = GenerateStockStream(&catalog, stock);

  const Config configs[] = {
      {"count_modular", "COUNT(*)", CounterMode::kModular, 1, true},
      {"count_exact", "COUNT(*)", CounterMode::kExact, 1, true},
      {"count_generic", "COUNT(*)", CounterMode::kModular, 1, false},
      {"sum", "SUM(S.price)", CounterMode::kModular, 1, true},
      {"minmax", "MIN(S.price), MAX(S.price)", CounterMode::kModular, 1,
       true},
      {"avg", "AVG(S.price)", CounterMode::kModular, 1, true},
      {"multi4", "COUNT(*)", CounterMode::kModular, 4, true},
      {"count_modular_nosimd", "COUNT(*)", CounterMode::kModular, 1, true,
       false},
  };

  const char* isa = simd::IsaName(simd::DispatchedIsa());
  Table table({"config", "events/s", "peak memory", "vertices", "edges",
               "batch fb%", "simd"});
  for (const Config& config : configs) {
    EngineOptions options;
    options.counter_mode = config.mode;
    options.enable_specialized_kernels = config.specialized;
    options.enable_simd = config.simd;

    RunResult best;
    for (int64_t rep = 0; rep < reps; ++rep) {
      std::unique_ptr<GretaEngine> engine;
      if (config.num_queries > 1) {
        std::vector<QuerySpec> specs;
        std::vector<const QuerySpec*> spec_ptrs;
        for (int q = 0; q < config.num_queries; ++q) {
          specs.push_back(MakeQuery(&catalog, config, within, slide, factor,
                                    q));
        }
        for (const QuerySpec& s : specs) spec_ptrs.push_back(&s);
        auto built = GretaEngine::CreateMulti(&catalog, spec_ptrs, options);
        GRETA_CHECK(built.ok());
        engine = std::move(built).value();
      } else {
        QuerySpec spec =
            MakeQuery(&catalog, config, within, slide, factor, 0);
        auto built = GretaEngine::Create(&catalog, spec, options);
        GRETA_CHECK(built.ok());
        engine = std::move(built).value();
      }
      RunResult r = RunStreamBatched(engine.get(), stream, ingest);
      if (rep == 0 || r.throughput_eps > best.throughput_eps) best = r;
    }

    // Fraction of batch-ingested rows that fell back to the row-wise path
    // (0 when everything ran amortized, or when ingest was scalar).
    const size_t batch_total =
        best.stats.batch_rows_fast + best.stats.batch_rows_fallback;
    const double fallback_frac =
        batch_total > 0
            ? static_cast<double>(best.stats.batch_rows_fallback) /
                  static_cast<double>(batch_total)
            : 0.0;
    char fallback_cell[32];
    std::snprintf(fallback_cell, sizeof(fallback_cell), "%.1f%%",
                  fallback_frac * 100.0);
    const double simd_frac =
        batch_total > 0
            ? static_cast<double>(best.stats.simd_rows) /
                  static_cast<double>(batch_total)
            : 0.0;
    char simd_cell[48];
    if (best.stats.simd_rows > 0) {
      std::snprintf(simd_cell, sizeof(simd_cell), "%s (%.2f)", isa,
                    simd_frac);
    } else {
      std::snprintf(simd_cell, sizeof(simd_cell), "off");
    }
    table.AddRow({config.name, best.ThroughputCell(), best.MemoryCell(),
                  FormatCount(static_cast<double>(best.stats.vertices_stored)),
                  FormatCount(
                      static_cast<double>(best.stats.edges_traversed)),
                  fallback_cell, simd_cell});
    std::printf(
        "{\"bench\":\"hotpath\",\"config\":\"%s\",\"events\":%zu,"
        "\"events_per_sec\":%.1f,\"peak_bytes\":%zu,\"vertices\":%zu,"
        "\"edges\":%zu,\"rows\":%zu,\"batch_fallback_frac\":%.4f,"
        "\"simd\":\"%s\",\"simd_rows_frac\":%.4f}\n",
        config.name, stream.size(), best.throughput_eps,
        best.peak_memory_bytes, best.stats.vertices_stored,
        best.stats.edges_traversed, best.rows_emitted, fallback_frac,
        best.stats.simd_rows > 0 ? isa : "off", simd_frac);
  }
  std::printf("\n");
  table.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
