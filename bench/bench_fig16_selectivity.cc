// Figure 16 reproduction: positive patterns on the Linear Road stream,
// varying the selectivity of the edge predicate (the probability that a
// random event pair satisfies P.speed * X > NEXT(P).speed). The paper fixes
// 100k events per window; the default here is laptop-sized and
// flag-adjustable.

#include <cstdio>

#include "bench_util/harness.h"
#include "workload/linear_road.h"

namespace greta::bench {
namespace {

int Run(const Flags& flags) {
  int64_t events = flags.GetInt("events", 4000);
  int64_t budget = flags.GetInt("budget", 100'000'000);
  Ts within = flags.GetInt("within", 10);
  int64_t windows = flags.GetInt("windows", 3);
  int64_t vehicles = flags.GetInt("vehicles", 50);

  PrintHeader(
      "Figure 16: selectivity of edge predicates, Linear Road data",
      "Positive Q3 variation (Position P+ per vehicle/segment, predicate "
      "P.speed * X > NEXT(P).speed) with X chosen per selectivity; fixed "
      "events per window.",
      "Two-step latency/memory grow exponentially with selectivity and DNF "
      "beyond ~50%; GRETA stays fairly flat across the whole range.");

  Table latency({"selectivity", "GRETA", "SASE", "CET", "Flink-flat"});
  Table memory({"selectivity", "GRETA", "SASE", "CET", "Flink-flat"});
  Table throughput({"selectivity", "GRETA", "SASE", "CET", "Flink-flat"});

  for (double selectivity : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    Catalog catalog;
    LinearRoadConfig config;
    config.num_vehicles = static_cast<int>(vehicles);
    config.rate = static_cast<int>(events / within);
    config.duration = within * windows;
    Stream stream = GenerateLinearRoadStream(&catalog, config);
    auto spec = MakeQ3Selectivity(&catalog, within, within, selectivity);
    if (!spec.ok()) {
      std::fprintf(stderr, "Q3: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    char label[16];
    std::snprintf(label, sizeof(label), "%.0f%%", selectivity * 100);
    std::vector<std::string> lat{label};
    std::vector<std::string> mem{label};
    std::vector<std::string> thr{label};
    for (auto& engine :
         MakeAllEngines(&catalog, spec.value(), static_cast<size_t>(budget))) {
      RunResult r = RunStream(engine.get(), stream);
      lat.push_back(r.LatencyCell());
      mem.push_back(r.MemoryCell());
      thr.push_back(r.ThroughputCell());
    }
    latency.AddRow(std::move(lat));
    memory.AddRow(std::move(mem));
    throughput.AddRow(std::move(thr));
  }
  std::printf("(a) Latency (peak)\n");
  latency.Print();
  std::printf("\n(b) Memory (peak)\n");
  memory.Print();
  std::printf("\n(c) Throughput\n");
  throughput.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
