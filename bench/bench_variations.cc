// Multi-query workload: the paper evaluates "Q1 and its nine variations"
// concurrently (Section 10.1) — the price-delta factor X in
// S.price * X > NEXT(S).price varies per query, and throughput counts
// events processed by *all* queries per second. GRETA runs one engine per
// variation; cost scales linearly with the number of concurrent variations
// while each variation's latency stays flat.

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util/harness.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

int Run(const Flags& flags) {
  int64_t events = flags.GetInt("events", 4000);
  Ts within = flags.GetInt("within", 10);
  int64_t windows = flags.GetInt("windows", 3);

  PrintHeader(
      "Multi-query workload: Q1 and its variations (Section 10.1)",
      "k concurrent Q1 variations with price factors 1.00, 1.05, ... on one "
      "stock stream; GRETA only.",
      "Total processing cost grows linearly with the number of concurrent "
      "variations (no cross-query explosion); per-query throughput is "
      "stable.");

  Table table({"variations", "total time", "events x queries / s",
               "peak mem (all)"});
  for (int64_t k : {1, 2, 5, 10}) {
    Catalog catalog;
    StockConfig config;
    config.rate = static_cast<int>(events / within);
    config.duration = within * windows;
    config.drift = 1.0;
    Stream stream = GenerateStockStream(&catalog, config);

    std::vector<std::unique_ptr<GretaEngine>> engines;
    for (int64_t i = 0; i < k; ++i) {
      double factor = 1.0 - 0.01 * static_cast<double>(i);
      auto spec = MakeQ1(&catalog, within, within, factor);
      if (!spec.ok()) return 1;
      EngineOptions options;
      options.counter_mode = CounterMode::kModular;
      auto engine = GretaEngine::Create(&catalog, spec.value(), options);
      if (!engine.ok()) return 1;
      engines.push_back(std::move(engine).value());
    }

    auto start = std::chrono::steady_clock::now();
    for (const Event& e : stream.events()) {
      for (auto& engine : engines) {
        if (!engine->Process(e).ok()) return 1;
      }
    }
    for (auto& engine : engines) {
      (void)engine->Flush();
      (void)engine->TakeResults();
    }
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    size_t peak = 0;
    for (auto& engine : engines) peak += engine->stats().peak_bytes;
    double event_queries =
        static_cast<double>(stream.size()) * static_cast<double>(k);
    table.AddRow({std::to_string(k), FormatMillis(seconds * 1e3),
                  FormatCount(event_queries / seconds),
                  FormatBytes(static_cast<double>(peak))});
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
