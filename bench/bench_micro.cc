// Google-benchmark micro-benchmarks of the substrates: BigUInt counters,
// B+-tree inserts and range scans, template construction, query parsing,
// pane purge, and single-event GRETA graph insertion.

#include <benchmark/benchmark.h>

#include "common/biguint.h"
#include "common/random.h"
#include "core/engine.h"
#include "query/parser.h"
#include "storage/btree.h"
#include "storage/pane.h"
#include "workload/stock.h"

namespace greta {
namespace {

void BM_BigUIntAddSmall(benchmark::State& state) {
  BigUInt a(123456789);
  BigUInt b(987654321);
  for (auto _ : state) {
    a.Add(b);
    benchmark::DoNotOptimize(a.IsZero());
  }
}
BENCHMARK(BM_BigUIntAddSmall);

void BM_BigUIntAddWide(benchmark::State& state) {
  // ~state.range(0)-bit counters, the regime of exact trend counts.
  BigUInt a(1);
  for (int i = 0; i < state.range(0); ++i) {
    BigUInt copy = a;
    a.Add(copy);
  }
  BigUInt b = a;
  for (auto _ : state) {
    a.Add(b);
    benchmark::DoNotOptimize(a.BitWidth());
  }
}
BENCHMARK(BM_BigUIntAddWide)->Arg(256)->Arg(4096);

void BM_BigUIntToDecimal(benchmark::State& state) {
  BigUInt a(1);
  for (int i = 0; i < 512; ++i) {
    BigUInt copy = a;
    a.Add(copy);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ToDecimal());
  }
}
BENCHMARK(BM_BigUIntToDecimal);

void BM_BTreeInsert(benchmark::State& state) {
  Random rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree<int> tree;
    state.ResumeTiming();
    for (int i = 0; i < state.range(0); ++i) {
      tree.Insert(rng.UniformDouble(0, 1000), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BTreeInsert)->Arg(1000)->Arg(10000);

void BM_BTreeRangeScan(benchmark::State& state) {
  Random rng(7);
  BPlusTree<int> tree;
  for (int i = 0; i < 100000; ++i) {
    tree.Insert(rng.UniformDouble(0, 1000), i);
  }
  for (auto _ : state) {
    KeyBounds bounds;
    bounds.lo = 400;
    bounds.hi = 410;  // ~1% of keys
    size_t count = 0;
    tree.Scan(bounds, [&](int v) {
      benchmark::DoNotOptimize(v);
      ++count;
    });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_BTreeRangeScan);

void BM_PanePurge(benchmark::State& state) {
  struct V {
    int64_t payload[4];
  };
  for (auto _ : state) {
    state.PauseTiming();
    PaneStore<V> store(10, 2);
    for (Ts t = 0; t < 1000; ++t) {
      store.Insert(t, t % 2, static_cast<double>(t), V{});
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(store.PurgeBefore(900));
  }
}
BENCHMARK(BM_PanePurge);

void BM_ParseQ1(benchmark::State& state) {
  Catalog catalog;
  RegisterStockTypes(&catalog);
  for (auto _ : state) {
    auto spec = ParseQuery(
        "RETURN sector, COUNT(*) PATTERN Stock S+ "
        "WHERE [company, sector] AND S.price > NEXT(S).price "
        "GROUP-BY sector WITHIN 10 minutes SLIDE 10 seconds",
        &catalog);
    benchmark::DoNotOptimize(spec.ok());
  }
}
BENCHMARK(BM_ParseQ1);

void BM_PlanQ1(benchmark::State& state) {
  Catalog catalog;
  RegisterStockTypes(&catalog);
  auto spec = MakeQ1(&catalog, 10, 10);
  GRETA_CHECK(spec.ok());
  for (auto _ : state) {
    auto engine = GretaEngine::Create(&catalog, spec.value());
    benchmark::DoNotOptimize(engine.ok());
  }
}
BENCHMARK(BM_PlanQ1);

void BM_GretaProcessEvent(benchmark::State& state) {
  Catalog catalog;
  StockConfig config;
  config.rate = 1000;
  config.duration = static_cast<Ts>(state.range(0)) / 1000;
  Stream stream = GenerateStockStream(&catalog, config);
  auto spec = MakeQ1(&catalog, 10, 10);
  GRETA_CHECK(spec.ok());
  for (auto _ : state) {
    EngineOptions options;
    options.counter_mode = CounterMode::kModular;
    auto engine_or = GretaEngine::Create(&catalog, spec.value(), options);
    GRETA_CHECK(engine_or.ok());
    auto engine = std::move(engine_or).value();
    for (const Event& e : stream.events()) {
      GRETA_CHECK(engine->Process(e).ok());
    }
    GRETA_CHECK(engine->Flush().ok());
    benchmark::DoNotOptimize(engine->TakeResults());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(stream.size()));
}
BENCHMARK(BM_GretaProcessEvent)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace greta

BENCHMARK_MAIN();
