// Columnar ingest benchmark: throughput of the batch path (ProcessBatch +
// amortized run kernels) across ingest batch sizes and kernel strategies,
// against the scalar per-event Process path. Four workloads:
//  - the Q1-shaped tumbling COUNT(*) query across batch sizes (the original
//    sweep: scalar / batch1 / batch64 / batch256 / batch1024 / rowwise);
//  - a sliding-window COUNT(*) (5 panes per event, NEXT predicate) that the
//    pre-generalized kernel used to reject — now suffix-merge;
//  - a tumbling SUM (no NEXT predicate) — now the shared-fold strategy;
//  - a partial-sharing cluster (two COUNT queries, same Kleene core,
//    different window lengths) through the batched snapshot kernel.
// Before timing anything each workload replays a smaller stream through
// both paths and checks the result rows are bit-identical — a bench that
// got faster by computing something else is worthless. Emits one JSON row
// per configuration for the BENCH_batch.json trajectory artifact (CI
// uploads it; the perf-smoke step diffs it against
// bench/baselines/BENCH_batch_baseline.json).
//
// Flags: --rate/--duration size the stream, --within/--slide the window,
// --reps best-of repetitions.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "bench_util/metrics.h"
#include "common/simd.h"
#include "query/parser.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

enum Workload { kQ1, kSliding, kSum, kPartial, kFilter, kResidual };

QuerySpec MakeQuery(Catalog* catalog, const std::string& agg, Ts within,
                    Ts slide, bool next_pred,
                    const std::string& extra_where = "") {
  std::string text = "RETURN sector, " + agg +
                     " PATTERN Stock S+ WHERE [company, sector]" +
                     (next_pred ? " AND S.price > NEXT(S).price" : "") +
                     extra_where + " GROUP-BY sector WITHIN " +
                     std::to_string(within) + " seconds SLIDE " +
                     std::to_string(slide) + " seconds";
  auto spec = ParseQuery(text, catalog);
  GRETA_CHECK(spec.ok());
  return std::move(spec).value();
}

// Filter-heavy: three const vertex predicates (the vector filter kernel's
// fast shape) on top of the equivalence keys, selective enough (~10% of
// rows survive) that throughput tracks the filter loop, not propagation.
// Timed on the one-company stream: a single partition makes each row group
// batch-sized, so the filter kernels sweep long consecutive lanes — the
// dense-scan regime this workload exists to measure.
QuerySpec MakeFilterQuery(Catalog* catalog, Ts within, Ts slide) {
  return MakeQuery(catalog, "COUNT(*)", within, slide, /*next_pred=*/false,
                   " AND S.volume > 100 AND S.volume <= 200"
                   " AND S.price > 50.0");
}

// Residual-predicate: two NEXT comparisons; the tree key range enforces one,
// the other stays residual and runs per (entry, event) pair through the
// compiled edge filter — the vectorized re-filter hot loop.
QuerySpec MakeResidualQuery(Catalog* catalog, Ts within, Ts slide) {
  return MakeQuery(catalog, "COUNT(*)", within, slide, /*next_pred=*/true,
                   " AND S.volume >= NEXT(S).volume");
}

// The partial cluster: same Kleene core (type, predicates, keys), window
// lengths `within` and `2 * within` on an equal slide — the regime where
// only snapshot sharing merges the graphs.
std::vector<QuerySpec> MakePartialSpecs(Catalog* catalog, Ts within) {
  std::vector<QuerySpec> specs;
  specs.push_back(MakeQuery(catalog, "COUNT(*)", within, within, false));
  specs.push_back(MakeQuery(catalog, "COUNT(*)", 2 * within, within, false));
  return specs;
}

std::unique_ptr<GretaEngine> MakeEngine(Catalog* catalog,
                                        const QuerySpec& spec,
                                        bool batch_kernels,
                                        bool simd = true) {
  EngineOptions options;
  options.enable_batch_kernels = batch_kernels;
  options.enable_simd = simd;
  auto built = GretaEngine::Create(catalog, spec, options);
  GRETA_CHECK(built.ok());
  return std::move(built).value();
}

std::unique_ptr<GretaEngine> MakePartialEngine(
    Catalog* catalog, const std::vector<QuerySpec>& specs,
    bool batch_kernels) {
  EngineOptions options;
  options.enable_batch_kernels = batch_kernels;
  std::vector<const QuerySpec*> spec_ptrs;
  for (const QuerySpec& s : specs) spec_ptrs.push_back(&s);
  auto built = GretaEngine::CreatePartial(catalog, spec_ptrs, options);
  GRETA_CHECK(built.ok());
  return std::move(built).value();
}

// Feeds the stream without draining (per-slot drains happen afterwards);
// batch_size 0 is the scalar Process loop.
void Feed(GretaEngine* engine, const Stream& stream, size_t batch_size) {
  if (batch_size == 0) {
    for (const Event& e : stream.events()) {
      GRETA_CHECK(engine->Process(e).ok());
    }
  } else {
    EventBatch batch;
    batch.reserve(batch_size);
    const std::vector<Event>& events = stream.events();
    size_t i = 0;
    while (i < events.size()) {
      batch.clear();
      for (; i < events.size() && batch.size() < batch_size; ++i) {
        batch.Append(events[i]);
      }
      GRETA_CHECK(engine->ProcessBatch(batch).ok());
    }
  }
  GRETA_CHECK(engine->Flush().ok());
}

// Replays the stream collecting every emitted row (scalar path when
// batch_size is 0) — the correctness half, not the timed half.
std::vector<ResultRow> CollectRows(GretaEngine* engine, const Stream& stream,
                                   size_t batch_size) {
  std::vector<ResultRow> rows;
  auto drain = [&] {
    for (ResultRow& row : engine->TakeResults()) rows.push_back(std::move(row));
  };
  if (batch_size == 0) {
    for (const Event& e : stream.events()) {
      GRETA_CHECK(engine->Process(e).ok());
      drain();
    }
  } else {
    EventBatch batch;
    batch.reserve(batch_size);
    const std::vector<Event>& events = stream.events();
    size_t i = 0;
    while (i < events.size()) {
      batch.clear();
      for (; i < events.size() && batch.size() < batch_size; ++i) {
        batch.Append(events[i]);
      }
      GRETA_CHECK(engine->ProcessBatch(batch).ok());
      drain();
    }
  }
  GRETA_CHECK(engine->Flush().ok());
  drain();
  return rows;
}

void CheckIdenticalRows(const std::vector<ResultRow>& scalar,
                        const std::vector<ResultRow>& batched,
                        const char* label) {
  GRETA_CHECK(scalar.size() == batched.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    const ResultRow& a = scalar[i];
    const ResultRow& b = batched[i];
    GRETA_CHECK(a.wid == b.wid);
    GRETA_CHECK(a.group.size() == b.group.size());
    for (size_t g = 0; g < a.group.size(); ++g) {
      GRETA_CHECK(a.group[g] == b.group[g]);
    }
    GRETA_CHECK(a.aggs.count.ToDecimal() == b.aggs.count.ToDecimal());
    // Bit-exact, no tolerance: the batch kernels must fold attribute
    // aggregates in the scalar path's order.
    GRETA_CHECK(a.aggs.sum == b.aggs.sum);
    GRETA_CHECK(a.aggs.min == b.aggs.min);
    GRETA_CHECK(a.aggs.max == b.aggs.max);
  }
  std::printf("verified: %s rows identical to scalar (%zu rows)\n", label,
              scalar.size());
}

int Run(const Flags& flags) {
  int64_t rate = flags.GetInt("rate", 800);
  Ts duration = flags.GetInt("duration", 60);
  Ts within = flags.GetInt("within", 10);
  Ts slide = flags.GetInt("slide", 10);
  int64_t reps = flags.GetInt("reps", 3);

  PrintHeader(
      "Columnar ingest: batch path vs scalar path across batch sizes",
      "Stock-stream Kleene queries; scalar is the per-event Process loop, "
      "batchN packs N events per ProcessBatch call (same-timestamp runs "
      "share one window division and one predecessor scan), "
      "batch256_rowwise forces the row-at-a-time fallback through the batch "
      "entry point. sliding_* is a 5-panes-per-event COUNT (suffix-merge "
      "strategy), sum_* a tumbling SUM (shared-fold), partial_* a two-query "
      "partial-sharing cluster (batched snapshot kernel). filter_* stacks "
      "three const vertex predicates (vector filter kernel) on a "
      "one-company stream (single partition, batch-sized row groups), "
      "residual_* two "
      "NEXT comparisons (vectorized edge re-filter); *_nosimd twins force "
      "the scalar kernels on the same batch path. The simd column reports "
      "the dispatched ISA and the fraction of batch rows that ran "
      "vectorized.",
      "Throughput should rise with the batch size until every "
      "same-timestamp run fits in one batch; each *_batch256 row should "
      "clearly beat its *_scalar twin now that sliding windows, attribute "
      "aggregates and partial sharing run amortized kernels — and each "
      "*_nosimd twin on an AVX2 host, now that the hot loops dispatch "
      "vector kernels.");

  Catalog catalog;
  StockConfig stock;
  stock.rate = static_cast<int>(rate);
  stock.duration = duration;
  Stream stream = GenerateStockStream(&catalog, stock);
  // One-company twin for the filter workload: a single partition makes row
  // groups batch-sized (256 consecutive filter lanes instead of ~26
  // company-strided ones), which is the dense-scan shape the vector filter
  // kernels are built for.
  StockConfig hot = stock;
  hot.num_companies = 1;
  hot.num_sectors = 1;
  Stream hot_stream = GenerateStockStream(&catalog, hot);
  QuerySpec q1 = MakeQuery(&catalog, "COUNT(*)", within, slide, true);
  QuerySpec sliding =
      MakeQuery(&catalog, "COUNT(*)", within, /*slide=*/2, true);
  QuerySpec sum = MakeQuery(&catalog, "SUM(S.price)", within, within, false);
  std::vector<QuerySpec> partial = MakePartialSpecs(&catalog, within);
  QuerySpec filter_q = MakeFilterQuery(&catalog, within, slide);
  QuerySpec residual_q = MakeResidualQuery(&catalog, within, slide);

  // Correctness first, on a smaller stream so the check stays cheap.
  {
    StockConfig small = stock;
    small.duration = duration / 4 > 0 ? duration / 4 : 1;
    Catalog check_catalog;
    Stream check_stream = GenerateStockStream(&check_catalog, small);
    struct Check {
      const char* name;
      QuerySpec spec;
    };
    Check checks[] = {
        {"q1", MakeQuery(&check_catalog, "COUNT(*)", within, slide, true)},
        {"sliding", MakeQuery(&check_catalog, "COUNT(*)", within, 2, true)},
        {"sum", MakeQuery(&check_catalog, "SUM(S.price)", within, within,
                          false)},
        {"filter", MakeFilterQuery(&check_catalog, within, slide)},
        {"residual", MakeResidualQuery(&check_catalog, within, slide)},
    };
    for (const Check& check : checks) {
      auto scalar_engine = MakeEngine(&check_catalog, check.spec, true);
      std::vector<ResultRow> scalar_rows =
          CollectRows(scalar_engine.get(), check_stream, 0);
      for (size_t batch_size : {size_t{1}, size_t{64}, size_t{256}}) {
        auto batched_engine = MakeEngine(&check_catalog, check.spec, true);
        CheckIdenticalRows(
            scalar_rows,
            CollectRows(batched_engine.get(), check_stream, batch_size),
            (std::string(check.name) + " batch" + std::to_string(batch_size))
                .c_str());
      }
      auto rowwise_engine = MakeEngine(&check_catalog, check.spec, false);
      CheckIdenticalRows(
          scalar_rows,
          CollectRows(rowwise_engine.get(), check_stream, 256),
          (std::string(check.name) + " batch256_rowwise").c_str());
      // SIMD ablation twin: same batch path, vector kernels forced off —
      // rows must match the dispatched-ISA run bit for bit.
      auto nosimd_engine =
          MakeEngine(&check_catalog, check.spec, true, /*simd=*/false);
      CheckIdenticalRows(
          scalar_rows,
          CollectRows(nosimd_engine.get(), check_stream, 256),
          (std::string(check.name) + " batch256_nosimd").c_str());
    }
    // The filter workload is timed on the one-company stream (single
    // partition, batch-sized row groups); verify that path too.
    StockConfig small_hot = small;
    small_hot.num_companies = 1;
    small_hot.num_sectors = 1;
    Stream check_hot = GenerateStockStream(&check_catalog, small_hot);
    QuerySpec filter_hot = MakeFilterQuery(&check_catalog, within, slide);
    auto fh_scalar = MakeEngine(&check_catalog, filter_hot, true);
    std::vector<ResultRow> fh_rows =
        CollectRows(fh_scalar.get(), check_hot, 0);
    auto fh_batched = MakeEngine(&check_catalog, filter_hot, true);
    CheckIdenticalRows(fh_rows,
                       CollectRows(fh_batched.get(), check_hot, 256),
                       "filter_hot batch256");
    auto fh_nosimd = MakeEngine(&check_catalog, filter_hot, true, false);
    CheckIdenticalRows(fh_rows,
                       CollectRows(fh_nosimd.get(), check_hot, 256),
                       "filter_hot batch256_nosimd");
    // Partial cluster: per-slot drains (TakeResults would mix the slots).
    std::vector<QuerySpec> check_partial =
        MakePartialSpecs(&check_catalog, within);
    auto scalar_partial = MakePartialEngine(&check_catalog, check_partial,
                                            true);
    Feed(scalar_partial.get(), check_stream, 0);
    auto batched_partial = MakePartialEngine(&check_catalog, check_partial,
                                             true);
    Feed(batched_partial.get(), check_stream, 256);
    for (size_t q = 0; q < check_partial.size(); ++q) {
      CheckIdenticalRows(
          scalar_partial->TakeResultsFor(q),
          batched_partial->TakeResultsFor(q),
          ("partial batch256 slot " + std::to_string(q)).c_str());
    }
  }

  struct Config {
    const char* name;
    size_t batch_size;
    bool batch_kernels;
    Workload workload;
    bool simd = true;
  };
  const Config configs[] = {
      {"scalar", 0, true, kQ1},
      {"batch1", 1, true, kQ1},
      {"batch64", 64, true, kQ1},
      {"batch256", 256, true, kQ1},
      {"batch1024", 1024, true, kQ1},
      {"batch256_rowwise", 256, false, kQ1},
      {"batch256_nosimd", 256, true, kQ1, false},
      {"sliding_scalar", 0, true, kSliding},
      {"sliding_batch256", 256, true, kSliding},
      {"sum_scalar", 0, true, kSum},
      {"sum_batch256", 256, true, kSum},
      {"partial_scalar", 0, true, kPartial},
      {"partial_batch256", 256, true, kPartial},
      {"filter_scalar", 0, true, kFilter},
      {"filter_batch256", 256, true, kFilter},
      {"filter_batch256_nosimd", 256, true, kFilter, false},
      {"residual_scalar", 0, true, kResidual},
      {"residual_batch256", 256, true, kResidual},
      {"residual_batch256_nosimd", 256, true, kResidual, false},
  };

  // The dispatched ISA is process-wide (cpuid + GRETA_SIMD override); the
  // per-config cell reports it alongside the fraction of batch rows whose
  // kernels actually ran vectorized for that engine configuration.
  const char* isa = simd::IsaName(simd::DispatchedIsa());
  Table table({"config", "events/s", "peak memory", "edges", "simd"});
  for (const Config& config : configs) {
    IngestOptions ingest;
    ingest.batch_size = config.batch_size;
    RunResult best;
    for (int64_t rep = 0; rep < reps; ++rep) {
      std::unique_ptr<GretaEngine> engine;
      switch (config.workload) {
        case kQ1:
          engine = MakeEngine(&catalog, q1, config.batch_kernels,
                              config.simd);
          break;
        case kSliding:
          engine = MakeEngine(&catalog, sliding, config.batch_kernels,
                              config.simd);
          break;
        case kSum:
          engine = MakeEngine(&catalog, sum, config.batch_kernels,
                              config.simd);
          break;
        case kPartial:
          engine = MakePartialEngine(&catalog, partial, config.batch_kernels);
          break;
        case kFilter:
          engine = MakeEngine(&catalog, filter_q, config.batch_kernels,
                              config.simd);
          break;
        case kResidual:
          engine = MakeEngine(&catalog, residual_q, config.batch_kernels,
                              config.simd);
          break;
      }
      const Stream& timed =
          config.workload == kFilter ? hot_stream : stream;
      RunResult r = RunStreamBatched(engine.get(), timed, ingest);
      if (rep == 0 || r.throughput_eps > best.throughput_eps) best = r;
    }
    const size_t timed_events =
        config.workload == kFilter ? hot_stream.size() : stream.size();
    const size_t batch_rows =
        best.stats.batch_rows_fast + best.stats.batch_rows_fallback;
    const double simd_frac =
        batch_rows > 0
            ? static_cast<double>(best.stats.simd_rows) / batch_rows
            : 0.0;
    char simd_cell[48];
    if (best.stats.simd_rows > 0) {
      std::snprintf(simd_cell, sizeof(simd_cell), "%s (%.2f)", isa,
                    simd_frac);
    } else {
      std::snprintf(simd_cell, sizeof(simd_cell), "off");
    }
    table.AddRow({config.name, best.ThroughputCell(), best.MemoryCell(),
                  FormatCount(
                      static_cast<double>(best.stats.edges_traversed)),
                  simd_cell});
    std::printf(
        "{\"bench\":\"batch\",\"config\":\"%s\",\"events\":%zu,"
        "\"events_per_sec\":%.1f,\"peak_bytes\":%zu,\"edges\":%zu,"
        "\"rows\":%zu,\"simd\":\"%s\",\"simd_rows_frac\":%.4f}\n",
        config.name, timed_events, best.throughput_eps,
        best.peak_memory_bytes, best.stats.edges_traversed,
        best.rows_emitted, best.stats.simd_rows > 0 ? isa : "off",
        simd_frac);
  }
  std::printf("\n");
  table.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
