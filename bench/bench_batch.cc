// Columnar ingest benchmark: throughput of the batch path (ProcessBatch +
// vectorized run kernels) across ingest batch sizes, against the scalar
// per-event Process path on the same Q1-shaped COUNT(*) query. Before
// timing anything it replays a smaller stream through both paths and
// checks the result rows are bit-identical — a bench that got faster by
// computing something else is worthless. Emits one JSON row per
// configuration for the BENCH_batch.json trajectory artifact (CI uploads
// it; the perf-smoke step diffs it against
// bench/baselines/BENCH_batch_baseline.json).
//
// Flags: --rate/--duration size the stream, --within/--slide the window,
// --reps best-of repetitions.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "bench_util/metrics.h"
#include "query/parser.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

QuerySpec MakeQuery(Catalog* catalog, Ts within, Ts slide) {
  std::string text =
      "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] AND "
      "S.price > NEXT(S).price GROUP-BY sector WITHIN " +
      std::to_string(within) + " seconds SLIDE " + std::to_string(slide) +
      " seconds";
  auto spec = ParseQuery(text, catalog);
  GRETA_CHECK(spec.ok());
  return std::move(spec).value();
}

std::unique_ptr<GretaEngine> MakeEngine(Catalog* catalog,
                                        const QuerySpec& spec,
                                        bool batch_kernels) {
  EngineOptions options;
  options.enable_batch_kernels = batch_kernels;
  auto built = GretaEngine::Create(catalog, spec, options);
  GRETA_CHECK(built.ok());
  return std::move(built).value();
}

// Replays the stream collecting every emitted row (scalar path when
// batch_size is 0) — the correctness half, not the timed half.
std::vector<ResultRow> CollectRows(GretaEngine* engine, const Stream& stream,
                                   size_t batch_size) {
  std::vector<ResultRow> rows;
  auto drain = [&] {
    for (ResultRow& row : engine->TakeResults()) rows.push_back(std::move(row));
  };
  if (batch_size == 0) {
    for (const Event& e : stream.events()) {
      GRETA_CHECK(engine->Process(e).ok());
      drain();
    }
  } else {
    EventBatch batch;
    batch.reserve(batch_size);
    const std::vector<Event>& events = stream.events();
    size_t i = 0;
    while (i < events.size()) {
      batch.clear();
      for (; i < events.size() && batch.size() < batch_size; ++i) {
        batch.Append(events[i]);
      }
      GRETA_CHECK(engine->ProcessBatch(batch).ok());
      drain();
    }
  }
  GRETA_CHECK(engine->Flush().ok());
  drain();
  return rows;
}

void CheckIdenticalRows(const std::vector<ResultRow>& scalar,
                        const std::vector<ResultRow>& batched,
                        const char* label) {
  GRETA_CHECK(scalar.size() == batched.size());
  for (size_t i = 0; i < scalar.size(); ++i) {
    const ResultRow& a = scalar[i];
    const ResultRow& b = batched[i];
    GRETA_CHECK(a.wid == b.wid);
    GRETA_CHECK(a.group.size() == b.group.size());
    for (size_t g = 0; g < a.group.size(); ++g) {
      GRETA_CHECK(a.group[g] == b.group[g]);
    }
    GRETA_CHECK(a.aggs.count.ToDecimal() == b.aggs.count.ToDecimal());
  }
  std::printf("verified: %s rows identical to scalar (%zu rows)\n", label,
              scalar.size());
}

int Run(const Flags& flags) {
  int64_t rate = flags.GetInt("rate", 800);
  Ts duration = flags.GetInt("duration", 60);
  Ts within = flags.GetInt("within", 10);
  Ts slide = flags.GetInt("slide", 10);
  int64_t reps = flags.GetInt("reps", 3);

  PrintHeader(
      "Columnar ingest: batch path vs scalar path across batch sizes",
      "Q1-shaped COUNT(*) Kleene query on the stock stream; scalar is the "
      "per-event Process loop, batchN packs N events per ProcessBatch call "
      "(same-timestamp runs share one window division and one predecessor "
      "scan), batch256_rowwise forces the row-at-a-time fallback through "
      "the batch entry point.",
      "Throughput should rise with the batch size until every "
      "same-timestamp run fits in one batch; batch256_rowwise isolates "
      "call-overhead savings from the vectorized-kernel savings.");

  Catalog catalog;
  StockConfig stock;
  stock.rate = static_cast<int>(rate);
  stock.duration = duration;
  Stream stream = GenerateStockStream(&catalog, stock);
  QuerySpec spec = MakeQuery(&catalog, within, slide);

  // Correctness first, on a smaller stream so the check stays cheap.
  {
    StockConfig small = stock;
    small.duration = duration / 4 > 0 ? duration / 4 : 1;
    Catalog check_catalog;
    Stream check_stream = GenerateStockStream(&check_catalog, small);
    QuerySpec check_spec = MakeQuery(&check_catalog, within, slide);
    auto scalar_engine = MakeEngine(&check_catalog, check_spec, true);
    std::vector<ResultRow> scalar_rows =
        CollectRows(scalar_engine.get(), check_stream, 0);
    for (size_t batch_size : {size_t{1}, size_t{64}, size_t{256}}) {
      auto batched_engine = MakeEngine(&check_catalog, check_spec, true);
      CheckIdenticalRows(
          scalar_rows,
          CollectRows(batched_engine.get(), check_stream, batch_size),
          ("batch" + std::to_string(batch_size)).c_str());
    }
    auto rowwise_engine = MakeEngine(&check_catalog, check_spec, false);
    CheckIdenticalRows(scalar_rows,
                       CollectRows(rowwise_engine.get(), check_stream, 256),
                       "batch256_rowwise");
  }

  struct Config {
    const char* name;
    size_t batch_size;
    bool batch_kernels;
  };
  const Config configs[] = {
      {"scalar", 0, true},          {"batch1", 1, true},
      {"batch64", 64, true},        {"batch256", 256, true},
      {"batch1024", 1024, true},    {"batch256_rowwise", 256, false},
  };

  Table table({"config", "events/s", "peak memory", "edges"});
  for (const Config& config : configs) {
    IngestOptions ingest;
    ingest.batch_size = config.batch_size;
    RunResult best;
    for (int64_t rep = 0; rep < reps; ++rep) {
      auto engine = MakeEngine(&catalog, spec, config.batch_kernels);
      RunResult r = RunStreamBatched(engine.get(), stream, ingest);
      if (rep == 0 || r.throughput_eps > best.throughput_eps) best = r;
    }
    table.AddRow({config.name, best.ThroughputCell(), best.MemoryCell(),
                  FormatCount(
                      static_cast<double>(best.stats.edges_traversed))});
    std::printf(
        "{\"bench\":\"batch\",\"config\":\"%s\",\"events\":%zu,"
        "\"events_per_sec\":%.1f,\"peak_bytes\":%zu,\"edges\":%zu,"
        "\"rows\":%zu}\n",
        config.name, stream.size(), best.throughput_eps,
        best.peak_memory_bytes, best.stats.edges_traversed,
        best.rows_emitted);
  }
  std::printf("\n");
  table.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
