// Headline reproduction: the paper's three motivating queries Q1 (stock
// down-trends per sector), Q2 (CPU totals over increasing-load trends per
// mapper) and Q3 (slowing cars in accident-free segments) end to end, each
// on its own data set with the paper's window shapes (scaled to seconds),
// across all four engines.

#include <cstdio>

#include "bench_util/harness.h"
#include "workload/cluster.h"
#include "workload/linear_road.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

void RunCase(const char* label, const Catalog& catalog, const QuerySpec& spec,
             const Stream& stream, size_t budget, Table* table) {
  std::vector<std::string> row{label};
  for (auto& engine : MakeAllEngines(&catalog, spec, budget)) {
    RunResult r = RunStream(engine.get(), stream);
    row.push_back(r.LatencyCell() + " / " + r.MemoryCell());
  }
  table->AddRow(std::move(row));
}

int Run(const Flags& flags) {
  int64_t budget = flags.GetInt("budget", 100'000'000);
  int64_t rate = flags.GetInt("rate", 300);
  Ts duration = flags.GetInt("seconds", 40);

  PrintHeader(
      "Queries Q1 / Q2 / Q3 (Section 1)",
      "The paper's three motivating queries on their respective data sets "
      "(windows scaled: Q1 10s/5s, Q2 12s/6s, Q3 10s/2s); cells are "
      "latency / peak memory.",
      "GRETA handles all three with sub-millisecond window latency; the "
      "two-step engines depend on how many trends each workload produces "
      "and blow up or DNF on the trend-heavy ones.");

  Table table({"query", "GRETA", "SASE", "CET", "Flink-flat"});

  {
    Catalog catalog;
    StockConfig config;
    config.rate = static_cast<int>(rate);
    config.duration = duration;
    config.drift = 1.0;
    Stream stream = GenerateStockStream(&catalog, config);
    auto q1 = MakeQ1(&catalog, 10, 5);
    GRETA_CHECK(q1.ok());
    RunCase("Q1 stock down-trends", catalog, q1.value(), stream,
            static_cast<size_t>(budget), &table);
  }
  {
    Catalog catalog;
    ClusterConfig config;
    config.rate = static_cast<int>(rate);
    config.duration = duration;
    config.num_jobs = 4;
    config.num_mappers = 8;
    config.restart_probability = 0.15;
    Stream stream = GenerateClusterStream(&catalog, config);
    auto q2 = MakeQ2(&catalog, 12, 6, /*factor=*/1.05);
    GRETA_CHECK(q2.ok());
    RunCase("Q2 cluster load trends", catalog, q2.value(), stream,
            static_cast<size_t>(budget), &table);
  }
  {
    Catalog catalog;
    LinearRoadConfig config;
    config.rate = static_cast<int>(rate);
    config.duration = duration;
    config.num_vehicles = 30;
    config.accident_probability = 0.1;
    Stream stream = GenerateLinearRoadStream(&catalog, config);
    auto q3 = MakeQ3(&catalog, 10, 2);
    GRETA_CHECK(q3.ok());
    RunCase("Q3 traffic slow-downs", catalog, q3.value(), stream,
            static_cast<size_t>(budget), &table);
  }
  table.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
