// Figure 15 reproduction: the Figure-14 queries extended with a negative
// sub-pattern (SEQ(NOT Halt, Stock+)) on the stock stream. Negation
// invalidates events before trends are aggregated, so GRETA/SASE/CET get
// cheaper than in Figure 14 while the flattened-Flink strategy benefits
// least.

#include <cstdio>

#include "bench_util/harness.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

int Run(const Flags& flags) {
  int64_t min_events = flags.GetInt("min-events", 500);
  int64_t max_events = flags.GetInt("max-events", 8000);
  int64_t budget = flags.GetInt("budget", 100'000'000);
  double factor = flags.GetDouble("factor", 1.0);
  double drift = flags.GetDouble("drift", 1.0);
  double volatility = flags.GetDouble("volatility", 1.0);
  double halt_probability = flags.GetDouble("halt-probability", 0.05);
  Ts within = flags.GetInt("within", 10);
  int64_t windows = flags.GetInt("windows", 3);

  PrintHeader(
      "Figure 15: patterns with negative sub-patterns, stock data",
      "Q1 with a leading negative sub-pattern (SEQ(NOT Halt H, Stock S+)); "
      "halts prune the graph before aggregation.",
      "Compared to Figure 14, latency and memory of GRETA/SASE/CET drop "
      "and throughput rises (negation shrinks the graphs/stacks before "
      "trend construction); baselines still explode eventually.");

  Table latency({"events/window", "GRETA", "SASE", "CET", "Flink-flat"});
  Table memory({"events/window", "GRETA", "SASE", "CET", "Flink-flat"});
  Table throughput({"events/window", "GRETA", "SASE", "CET", "Flink-flat"});

  for (int64_t n = min_events; n <= max_events; n *= 2) {
    Catalog catalog;
    StockConfig config;
    config.rate = static_cast<int>(n / within);
    config.duration = within * windows;
    config.drift = drift;
    config.volatility = volatility;
    config.halt_probability = halt_probability;
    Stream stream = GenerateStockStream(&catalog, config);
    auto spec = MakeQ1WithNegation(&catalog, within, within, factor);
    if (!spec.ok()) {
      std::fprintf(stderr, "Q1neg: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> lat{std::to_string(n)};
    std::vector<std::string> mem{std::to_string(n)};
    std::vector<std::string> thr{std::to_string(n)};
    for (auto& engine :
         MakeAllEngines(&catalog, spec.value(), static_cast<size_t>(budget))) {
      RunResult r = RunStream(engine.get(), stream);
      lat.push_back(r.LatencyCell());
      mem.push_back(r.MemoryCell());
      thr.push_back(r.ThroughputCell());
    }
    latency.AddRow(std::move(lat));
    memory.AddRow(std::move(mem));
    throughput.AddRow(std::move(thr));
  }
  std::printf("(a) Latency (peak)\n");
  latency.Print();
  std::printf("\n(b) Memory (peak)\n");
  memory.Print();
  std::printf("\n(c) Throughput\n");
  throughput.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
