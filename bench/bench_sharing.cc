// Multi-query sharing benchmark: throughput of the shared workload runtime
// vs. independent per-query engines as the number of overlapping queries
// grows (1/2/4/8/16). All queries of a workload match the same down-trend
// Kleene pattern over the stock stream and differ in their aggregates — the
// regime Hamlet targets, where graph construction dominates and is paid once
// under sharing but n times independently.
//
// Prints the usual fixed-width table plus one JSON row per (n, mode) for
// the bench trajectory files.
//
// Flags: --rate/--duration size the stream, --within/--slide the window,
// --drift the down-pair selectivity, --max-queries the sweep end.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "bench_util/metrics.h"
#include "query/parser.h"
#include "sharing/shared_engine.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

// Aggregate variants cycled to build an n-query overlapping workload. Real
// multi-tenant workloads repeat shapes, so wrapping past the list (n > 8)
// simply duplicates aggregates — still n distinct query slots.
const char* kAggVariants[] = {
    "COUNT(*)",
    "SUM(S.price)",
    "MIN(S.price), MAX(S.price)",
    "COUNT(S)",
    "AVG(S.price)",
    "SUM(S.volume)",
    "MIN(S.volume)",
    "AVG(S.volume)",
};

std::vector<QuerySpec> MakeWorkload(Catalog* catalog, int n, Ts within,
                                    Ts slide, double factor) {
  std::vector<QuerySpec> workload;
  for (int i = 0; i < n; ++i) {
    std::string text =
        "RETURN sector, " +
        std::string(kAggVariants[i % (sizeof(kAggVariants) /
                                      sizeof(kAggVariants[0]))]) +
        " PATTERN Stock S+ WHERE [company, sector] AND S.price * " +
        std::to_string(factor) +
        " > NEXT(S).price GROUP-BY sector WITHIN " +
        std::to_string(within) + " seconds SLIDE " + std::to_string(slide) +
        " seconds";
    auto spec = ParseQuery(text, catalog);
    GRETA_CHECK(spec.ok());
    workload.push_back(std::move(spec).value());
  }
  return workload;
}

void PrintJsonRow(const char* mode, int n, const RunResult& r,
                  double speedup) {
  std::printf(
      "{\"bench\":\"sharing\",\"mode\":\"%s\",\"queries\":%d,"
      "\"throughput_eps\":%.1f,\"latency_p50_ms\":%.3f,"
      "\"latency_p95_ms\":%.3f,\"latency_p99_ms\":%.3f,"
      "\"peak_memory_bytes\":%zu,\"vertices\":%zu,\"edges\":%zu,"
      "\"rows\":%zu,\"speedup_vs_independent\":%.3f}\n",
      mode, n, r.throughput_eps, r.latency_p50_ms, r.latency_p95_ms,
      r.latency_p99_ms, r.peak_memory_bytes,
      r.stats.vertices_stored, r.stats.edges_traversed, r.rows_emitted,
      speedup);
}

int Run(const Flags& flags) {
  int64_t rate = flags.GetInt("rate", 200);
  Ts duration = flags.GetInt("duration", 60);
  Ts within = flags.GetInt("within", 10);
  Ts slide = flags.GetInt("slide", 5);
  double drift = flags.GetDouble("drift", 1.0);
  double factor = flags.GetDouble("factor", 1.0);
  int64_t max_queries = flags.GetInt("max-queries", 16);

  PrintHeader(
      "Sharing: multi-query workloads, stock data",
      "n overlapping down-trend aggregation queries (same pattern, WHERE, "
      "grouping and window; different aggregates) executed by the shared "
      "workload runtime vs. n independent GRETA engines.",
      "Independent cost grows ~linearly in n (graph construction per "
      "query); shared cost pays construction once plus cheap per-query "
      "aggregate propagation, so the gap widens with n.");

  Table table({"queries", "shared eps", "independent eps", "speedup",
               "shared mem", "independent mem"});
  for (int64_t n = 1; n <= max_queries; n *= 2) {
    Catalog catalog;
    StockConfig config;
    config.rate = static_cast<int>(rate);
    config.duration = duration;
    config.drift = drift;
    Stream stream = GenerateStockStream(&catalog, config);

    sharing::SharedEngineOptions shared_opts;
    shared_opts.engine.counter_mode = CounterMode::kModular;
    auto shared_engine = sharing::SharedWorkloadEngine::Create(
        &catalog,
        MakeWorkload(&catalog, static_cast<int>(n), within, slide, factor),
        shared_opts);
    GRETA_CHECK(shared_engine.ok());
    RunResult shared = RunStream(shared_engine.value().get(), stream);

    sharing::SharedEngineOptions indep_opts = shared_opts;
    indep_opts.sharing.enable_sharing = false;
    auto indep_engine = sharing::SharedWorkloadEngine::Create(
        &catalog,
        MakeWorkload(&catalog, static_cast<int>(n), within, slide, factor),
        indep_opts);
    GRETA_CHECK(indep_engine.ok());
    RunResult independent = RunStream(indep_engine.value().get(), stream);

    double speedup = independent.total_seconds > 0.0
                         ? independent.total_seconds / shared.total_seconds
                         : 0.0;
    table.AddRow({std::to_string(n), shared.ThroughputCell(),
                  independent.ThroughputCell(),
                  std::to_string(speedup).substr(0, 5) + "x",
                  shared.MemoryCell(), independent.MemoryCell()});
    PrintJsonRow("shared", static_cast<int>(n), shared, speedup);
    PrintJsonRow("independent", static_cast<int>(n), independent, 1.0);
  }
  std::printf("\nThroughput and memory, shared vs independent execution\n");
  table.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  greta::bench::Flags flags(argc, argv);
  return greta::bench::Run(flags);
}
