// Partial sharing benchmark (Hamlet snapshot propagation): throughput of
// the shared workload runtime vs. independent per-query engines on a
// workload whose queries share one Kleene sub-pattern (the down-trend core
// `Stock S+` with its predicates and keys) but DIFFER in pattern suffix or
// window length — the regime exact fingerprint sharing cannot touch. The
// shared runtime builds the core graph once, propagates one structural
// snapshot per (vertex, window), and each query folds the snapshot through
// its own continuation states and window range.
//
// Acceptance criterion (ISSUE 2): >= 2x throughput over independent
// execution at 8 queries.
//
// Prints the usual fixed-width table plus one JSON row per (n, mode) for
// the bench trajectory files.
//
// Flags: --rate/--duration size the stream, --within/--slide the base
// window, --halt-prob the suffix-event rate, --factor the down-pair
// selectivity, --max-queries the sweep end.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "bench_util/metrics.h"
#include "query/parser.h"
#include "sharing/shared_engine.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

// Aggregates cycled across the workload: half read the snapshot count
// alone, half fold attribute components through dedicated fold slots.
const char* kAggVariants[] = {
    "COUNT(*)", "SUM(S.price)",  "COUNT(*)", "MIN(S.price)",
    "COUNT(*)", "AVG(S.price)",  "COUNT(*)", "MAX(S.price)",
};

// Query i shares the Kleene core but differs from every other query:
// alternating suffix shape (bare core vs. Halt continuation) and stretching
// window length (equal slide).
std::vector<QuerySpec> MakeWorkload(Catalog* catalog, int n, Ts within,
                                    Ts slide, double factor) {
  std::vector<QuerySpec> workload;
  for (int i = 0; i < n; ++i) {
    std::string pattern = (i % 2 == 0)
                              ? "Stock S+"
                              : "SEQ(Stock S+, Halt H)";
    Ts w = within + slide * static_cast<Ts>(i / 2);
    std::string text =
        "RETURN sector, " +
        std::string(kAggVariants[i % (sizeof(kAggVariants) /
                                      sizeof(kAggVariants[0]))]) +
        " PATTERN " + pattern + " WHERE [company, sector] AND S.price * " +
        std::to_string(factor) + " > NEXT(S).price GROUP-BY sector WITHIN " +
        std::to_string(w) + " seconds SLIDE " + std::to_string(slide) +
        " seconds";
    auto spec = ParseQuery(text, catalog);
    GRETA_CHECK(spec.ok());
    workload.push_back(std::move(spec).value());
  }
  return workload;
}

void PrintJsonRow(const char* mode, int n, const RunResult& r,
                  double speedup) {
  std::printf(
      "{\"bench\":\"partial_sharing\",\"mode\":\"%s\",\"queries\":%d,"
      "\"throughput_eps\":%.1f,\"latency_p50_ms\":%.3f,"
      "\"latency_p95_ms\":%.3f,\"latency_p99_ms\":%.3f,"
      "\"peak_memory_bytes\":%zu,\"vertices\":%zu,\"edges\":%zu,"
      "\"rows\":%zu,\"speedup_vs_independent\":%.3f}\n",
      mode, n, r.throughput_eps, r.latency_p50_ms, r.latency_p95_ms,
      r.latency_p99_ms, r.peak_memory_bytes,
      r.stats.vertices_stored, r.stats.edges_traversed, r.rows_emitted,
      speedup);
}

int Run(const Flags& flags) {
  int64_t rate = flags.GetInt("rate", 200);
  Ts duration = flags.GetInt("duration", 60);
  Ts within = flags.GetInt("within", 10);
  Ts slide = flags.GetInt("slide", 5);
  double halt_prob = flags.GetDouble("halt-prob", 0.05);
  double drift = flags.GetDouble("drift", 1.0);
  double factor = flags.GetDouble("factor", 1.0);
  int64_t max_queries = flags.GetInt("max-queries", 16);

  PrintHeader(
      "Partial sharing: common Kleene sub-pattern, differing suffix/window",
      "n down-trend aggregation queries sharing the Kleene core `Stock S+` "
      "(same WHERE and keys) but differing in pattern suffix (bare core "
      "vs. Halt continuation) and window length (equal slide), executed by "
      "the shared workload runtime vs. n independent GRETA engines.",
      "Exact fingerprint sharing merges none of these queries. Snapshot "
      "propagation pays the quadratic Kleene-closure work once and only "
      "per-query continuation/fold work n times, so throughput should "
      "exceed 2x independent execution by 8 queries.");

  Table table({"queries", "partial eps", "independent eps", "speedup",
               "partial mem", "independent mem"});
  for (int64_t n = 2; n <= max_queries; n *= 2) {
    Catalog catalog;
    StockConfig config;
    config.rate = static_cast<int>(rate);
    config.duration = duration;
    config.drift = drift;
    config.halt_probability = halt_prob;
    Stream stream = GenerateStockStream(&catalog, config);

    sharing::SharedEngineOptions shared_opts;
    shared_opts.engine.counter_mode = CounterMode::kModular;
    auto shared_engine = sharing::SharedWorkloadEngine::Create(
        &catalog,
        MakeWorkload(&catalog, static_cast<int>(n), within, slide, factor),
        shared_opts);
    GRETA_CHECK(shared_engine.ok());
    size_t partial_clusters = 0;
    for (const auto& cluster :
         shared_engine.value()->sharing_plan().clusters) {
      partial_clusters += (cluster.shared && cluster.partial) ? 1 : 0;
    }
    GRETA_CHECK(partial_clusters == 1);  // The whole workload is one core.
    RunResult shared = RunStream(shared_engine.value().get(), stream);

    sharing::SharedEngineOptions indep_opts = shared_opts;
    indep_opts.sharing.enable_sharing = false;
    auto indep_engine = sharing::SharedWorkloadEngine::Create(
        &catalog,
        MakeWorkload(&catalog, static_cast<int>(n), within, slide, factor),
        indep_opts);
    GRETA_CHECK(indep_engine.ok());
    RunResult independent = RunStream(indep_engine.value().get(), stream);

    double speedup = shared.total_seconds > 0.0
                         ? independent.total_seconds / shared.total_seconds
                         : 0.0;
    table.AddRow({std::to_string(n), shared.ThroughputCell(),
                  independent.ThroughputCell(),
                  std::to_string(speedup).substr(0, 5) + "x",
                  shared.MemoryCell(), independent.MemoryCell()});
    PrintJsonRow("partial", static_cast<int>(n), shared, speedup);
    PrintJsonRow("independent", static_cast<int>(n), independent, 1.0);
  }
  std::printf(
      "\nThroughput and memory, partial sharing vs independent execution\n");
  table.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  greta::bench::Flags flags(argc, argv);
  return greta::bench::Run(flags);
}
