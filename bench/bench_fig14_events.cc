// Figure 14 reproduction: positive patterns on the stock stream, varying
// the number of events per window. Reports latency (a), memory (b) and
// throughput (c) for GRETA and the two-step baselines (SASE, CET,
// Flink-flat).
//
// Flags: --events-list is driven by --min-events/--max-events (powers of 2
// sweep), --budget caps baseline work (they are exponential; DNF mirrors
// the paper's runs that did not terminate), --factor picks the Q1
// variation.

#include <cstdio>

#include "bench_util/harness.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

int Run(const Flags& flags) {
  int64_t min_events = flags.GetInt("min-events", 500);
  int64_t max_events = flags.GetInt("max-events", 8000);
  int64_t budget = flags.GetInt("budget", 100'000'000);
  double factor = flags.GetDouble("factor", 1.0);
  double drift = flags.GetDouble("drift", 1.0);
  double volatility = flags.GetDouble("volatility", 1.0);
  Ts within = flags.GetInt("within", 10);
  int64_t windows = flags.GetInt("windows", 3);

  PrintHeader(
      "Figure 14: positive patterns, stock data",
      "Q1 (down-trend count per sector, Kleene plus, skip-till-any-match) "
      "over a tumbling window; x-axis = events per window.",
      "GRETA is orders of magnitude faster; SASE/CET latency explodes "
      "exponentially until they fail to terminate (DNF); CET trades memory "
      "for ~2x speed over SASE; Flink is slowest; GRETA memory is flat and "
      "up to 50-fold below SASE.");

  Table latency({"events/window", "GRETA", "SASE", "CET", "Flink-flat"});
  Table memory({"events/window", "GRETA", "SASE", "CET", "Flink-flat"});
  Table throughput({"events/window", "GRETA", "SASE", "CET", "Flink-flat"});

  for (int64_t n = min_events; n <= max_events; n *= 2) {
    Catalog catalog;
    StockConfig config;
    config.rate = static_cast<int>(n / within);
    config.duration = within * windows;
    config.drift = drift;  // default tuned so baselines explode mid-sweep
    config.volatility = volatility;
    Stream stream = GenerateStockStream(&catalog, config);
    auto spec = MakeQ1(&catalog, within, within, factor);
    if (!spec.ok()) {
      std::fprintf(stderr, "Q1: %s\n", spec.status().ToString().c_str());
      return 1;
    }
    std::vector<std::string> lat{std::to_string(n)};
    std::vector<std::string> mem{std::to_string(n)};
    std::vector<std::string> thr{std::to_string(n)};
    for (auto& engine :
         MakeAllEngines(&catalog, spec.value(), static_cast<size_t>(budget))) {
      RunResult r = RunStream(engine.get(), stream);
      lat.push_back(r.LatencyCell());
      mem.push_back(r.MemoryCell());
      thr.push_back(r.ThroughputCell());
    }
    latency.AddRow(std::move(lat));
    memory.AddRow(std::move(mem));
    throughput.AddRow(std::move(thr));
  }
  std::printf("(a) Latency (peak)\n");
  latency.Print();
  std::printf("\n(b) Memory (peak)\n");
  memory.Print();
  std::printf("\n(c) Throughput\n");
  throughput.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
