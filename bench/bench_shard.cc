// Sharded parallel runtime benchmark: throughput vs shard count on the
// grouped stock workload (Q1-style COUNT(*) down-trends per sector,
// partitioned by [company, sector]), verified bit-identical to
// single-threaded execution on every sweep point.
//
// The sweep runs the SAME workload through the single-threaded reference
// engine and through the sharded runtime at 1/2/4/8 shards; each sharded
// run's merged rows are compared row-for-row (window, group, exact count)
// against the reference before the timing is reported. Speedup scales with
// available cores: on a single-core host the sharded runtime only measures
// its queueing overhead (~1x or slightly below); with >= num_shards cores
// the shards run truly in parallel.
//
// Prints the fixed-width table plus one JSON row per shard count:
//   {"bench":"shard","config":"shards=4","events_per_sec":...,
//    "speedup_vs_single":...,"rows_match":true,...}
// (the `bench/config/events_per_sec` triple is what scripts/perf_smoke.py
// diffs against bench/baselines/BENCH_shard_baseline.json).
//
// Flags: --rate/--duration size the stream, --companies/--sectors the key
// space, --within/--slide the window, --max-shards the sweep end,
// --batch/--heartbeat the runtime knobs, --workload=FILE loads a workload
// spec JSON (src/workload/spec.h) instead of the built-in workload.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util/harness.h"
#include "bench_util/metrics.h"
#include "query/parser.h"
#include "runtime/sharded_runtime.h"
#include "workload/spec.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct RunOutput {
  double seconds = 0.0;
  double events_per_sec = 0.0;
  size_t peak_memory_bytes = 0;
  std::vector<std::vector<ResultRow>> rows;  // per query
};

RunOutput RunShardedOnce(runtime::ShardedRuntime* rt, const Stream& stream) {
  RunOutput out;
  out.rows.resize(rt->num_queries());
  Clock::time_point start = Clock::now();
  for (const Event& e : stream.events()) {
    Status s = rt->Process(e);
    GRETA_CHECK(s.ok());
  }
  GRETA_CHECK(rt->Flush().ok());
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  for (size_t q = 0; q < rt->num_queries(); ++q) {
    out.rows[q] = rt->TakeResults(q);
  }
  out.events_per_sec =
      out.seconds > 0.0 ? static_cast<double>(stream.size()) / out.seconds
                        : 0.0;
  out.peak_memory_bytes = rt->memory().peak_bytes();
  return out;
}

RunOutput RunBaselineOnce(sharing::SharedWorkloadEngine* engine,
                          const Stream& stream) {
  RunOutput out;
  out.rows.resize(engine->num_queries());
  Clock::time_point start = Clock::now();
  for (const Event& e : stream.events()) {
    Status s = engine->Process(e);
    GRETA_CHECK(s.ok());
  }
  GRETA_CHECK(engine->Flush().ok());
  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  for (size_t q = 0; q < engine->num_queries(); ++q) {
    out.rows[q] = engine->TakeResults(q);
  }
  out.events_per_sec =
      out.seconds > 0.0 ? static_cast<double>(stream.size()) / out.seconds
                        : 0.0;
  out.peak_memory_bytes = engine->stats().peak_bytes;
  return out;
}

/// Row-for-row identity: window, group values, exact counter decimals.
bool RowsIdentical(const std::vector<std::vector<ResultRow>>& a,
                   const std::vector<std::vector<ResultRow>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      const ResultRow& x = a[q][i];
      const ResultRow& y = b[q][i];
      if (x.wid != y.wid || x.group.size() != y.group.size()) return false;
      for (size_t g = 0; g < x.group.size(); ++g) {
        if (!(x.group[g] == y.group[g])) return false;
      }
      if (x.aggs.count.ToDecimal() != y.aggs.count.ToDecimal()) return false;
    }
  }
  return true;
}

int Run(const Flags& flags) {
  int64_t rate = flags.GetInt("rate", 400);
  Ts duration = flags.GetInt("duration", 60);
  Ts within = flags.GetInt("within", 10);
  Ts slide = flags.GetInt("slide", 5);
  int64_t companies = flags.GetInt("companies", 32);
  int64_t sectors = flags.GetInt("sectors", 8);
  double drift = flags.GetDouble("drift", 0.8);
  int64_t max_shards = flags.GetInt("max-shards", 8);
  int64_t batch = flags.GetInt("batch", 256);
  int64_t heartbeat = flags.GetInt("heartbeat", 1024);

  Catalog catalog;
  std::vector<QuerySpec> workload;
  runtime::ShardedOptions options;
  Stream stream;

  // --workload=FILE: queries, options and dataset from one spec artifact
  // (src/workload/spec.h); otherwise the built-in grouped stock workload.
  std::string workload_path = flags.GetString("workload", "");
  if (!workload_path.empty()) {
    auto spec = workload::LoadWorkloadSpecFile(workload_path, &catalog);
    GRETA_CHECK(spec.ok());
    workload::WorkloadSpec& w = spec.value();
    GRETA_CHECK(w.stock.has_value());  // the bench needs a dataset to replay
    stream = GenerateStockStream(&catalog, *w.stock);
    workload = std::move(w.queries);
    options = std::move(w.runtime);
  } else {
    StockConfig config;
    config.rate = static_cast<int>(rate);
    config.duration = duration;
    config.num_companies = static_cast<int>(companies);
    config.num_sectors = static_cast<int>(sectors);
    config.drift = drift;
    stream = GenerateStockStream(&catalog, config);

    std::string q1 =
        "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] "
        "AND S.price > NEXT(S).price GROUP-BY sector WITHIN " +
        std::to_string(within) + " seconds SLIDE " + std::to_string(slide) +
        " seconds";
    auto spec = ParseQuery(q1, &catalog);
    GRETA_CHECK(spec.ok());
    workload.push_back(std::move(spec).value());
    options.workload.engine.counter_mode = CounterMode::kModular;
    // Runtime knobs from flags only for the built-in workload; a spec file
    // is the single source of truth for its own runtime block.
    options.batch_size = static_cast<size_t>(batch);
    options.heartbeat_events = static_cast<size_t>(heartbeat);
  }

  PrintHeader(
      "Sharding: partition-parallel runtime, grouped stock workload",
      "Q1 down-trend counting per sector over " +
          std::to_string(companies) +
          " companies, executed single-threaded vs the sharded runtime at "
          "1/2/4/8 shards; merged rows verified identical on every point.",
      "Throughput scales with shard count while the machine has cores to "
      "give (single-core hosts only measure queueing overhead); results "
      "stay bit-identical to single-threaded execution.");

  sharing::SharedEngineOptions baseline_options = options.workload;
  auto baseline_engine =
      sharing::SharedWorkloadEngine::Create(&catalog, workload,
                                            baseline_options);
  GRETA_CHECK(baseline_engine.ok());
  RunOutput baseline = RunBaselineOnce(baseline_engine.value().get(), stream);

  std::printf(
      "{\"bench\":\"shard\",\"config\":\"single\",\"shards\":0,"
      "\"events_per_sec\":%.1f,\"peak_memory_bytes\":%zu,\"rows\":%zu}\n",
      baseline.events_per_sec, baseline.peak_memory_bytes,
      baseline.rows[0].size());

  Table table({"shards", "events/s", "speedup vs single", "rows identical",
               "peak mem"});
  table.AddRow({"single", FormatCount(baseline.events_per_sec), "1.000x",
                "-", FormatBytes(
                    static_cast<double>(baseline.peak_memory_bytes))});

  for (int64_t shards = 1; shards <= max_shards; shards *= 2) {
    options.num_shards = static_cast<size_t>(shards);
    auto rt = runtime::ShardedRuntime::Create(&catalog, workload, options);
    GRETA_CHECK(rt.ok());
    RunOutput sharded = RunShardedOnce(rt.value().get(), stream);
    bool match = RowsIdentical(sharded.rows, baseline.rows);
    double speedup = baseline.seconds > 0.0 && sharded.seconds > 0.0
                         ? baseline.seconds / sharded.seconds
                         : 0.0;
    char speedup_cell[32];
    std::snprintf(speedup_cell, sizeof(speedup_cell), "%.3fx", speedup);
    table.AddRow({std::to_string(shards),
                  FormatCount(sharded.events_per_sec), speedup_cell,
                  match ? "yes" : "NO (BUG)",
                  FormatBytes(
                      static_cast<double>(sharded.peak_memory_bytes))});
    std::printf(
        "{\"bench\":\"shard\",\"config\":\"shards=%lld\",\"shards\":%lld,"
        "\"events_per_sec\":%.1f,\"speedup_vs_single\":%.3f,"
        "\"rows_match\":%s,\"peak_memory_bytes\":%zu}\n",
        static_cast<long long>(shards), static_cast<long long>(shards),
        sharded.events_per_sec, speedup, match ? "true" : "false",
        sharded.peak_memory_bytes);
    if (!match) {
      std::printf("ERROR: sharded rows diverge from single-threaded rows\n");
      return 1;
    }
  }
  std::printf("\nThroughput vs shard count (rows verified every point)\n");
  table.Print();
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  greta::bench::Flags flags(argc, argv);
  return greta::bench::Run(flags);
}
