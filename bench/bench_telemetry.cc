// Telemetry overhead benchmark: the same hot-path workload executed with
// the metric registry runtime-DISABLED (instruments never armed, every
// update site sees null pointers) and runtime-ENABLED, reporting both
// throughputs and the relative overhead — the subsystem's contract is that
// armed telemetry costs < 2% on the per-event hot path. A third phase runs
// a sharded adaptive workload so the exported snapshot carries per-shard
// queue, watermark-lag and migration series, then writes the full JSON
// snapshot (with the lifecycle trace) to --snapshot=PATH and prints the
// explain-style report.
//
// JSON rows: config "telemetry_off" / "telemetry_on" carry events_per_sec
// (diffed by scripts/perf_smoke.py against BENCH_telemetry_baseline.json);
// the "overhead" row carries the on/off ratio only, and the snapshot goes
// to a separate file so BENCH_telemetry.json stays a clean row stream.
//
// A fourth phase ("telemetry_serving") reruns the sharded workload with
// the embedded HTTP endpoint up and a scraper thread hammering /metrics,
// /healthz and /queries throughout — the observability service's contract
// is that concurrent scrapes ride on snapshots and atomics, never the hot
// path, so this row should match "sharded_adaptive" within noise.
//
// Flags: --rate/--duration size the stream, --reps best-of repetitions,
// --snapshot=PATH writes the JSON snapshot, --sharded=false skips phase 3,
// --serve=false skips phase 4.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util/harness.h"
#include "bench_util/metrics.h"
#include "query/parser.h"
#include "runtime/observability.h"
#include "runtime/sharded_runtime.h"
#include "telemetry/exporters.h"
#include "telemetry/http_server.h"
#include "telemetry/telemetry.h"
#include "workload/stock.h"

namespace greta::bench {
namespace {

QuerySpec HotpathQuery(Catalog* catalog) {
  auto spec = ParseQuery(
      "RETURN sector, COUNT(*) PATTERN Stock S+ WHERE [company, sector] AND "
      "S.price * 1.0 > NEXT(S).price GROUP-BY sector WITHIN 10 seconds "
      "SLIDE 10 seconds",
      catalog);
  GRETA_CHECK(spec.ok());
  return std::move(spec).value();
}

// Shareable window-diverse cluster (same Kleene core, different WITHINs)
// that the adaptive planner arbitrates under a bursty load — the phase-3
// workload that populates the sharing/runtime telemetry series.
std::vector<QuerySpec> AdaptiveWorkload(Catalog* catalog) {
  const char* texts[] = {
      "RETURN sector, COUNT(*), SUM(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 2 seconds SLIDE 2 seconds",
      "RETURN sector, COUNT(*), MIN(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 4 seconds SLIDE 2 seconds",
      "RETURN sector, COUNT(*), AVG(S.price) PATTERN Stock S+ "
      "WHERE [company, sector] AND S.price > NEXT(S).price "
      "GROUP-BY sector WITHIN 8 seconds SLIDE 2 seconds",
  };
  std::vector<QuerySpec> workload;
  for (const char* text : texts) {
    auto spec = ParseQuery(text, catalog);
    GRETA_CHECK(spec.ok());
    workload.push_back(std::move(spec).value());
  }
  return workload;
}

RunResult MeasureHotpath(const Catalog* catalog, const QuerySpec& spec,
                         const Stream& stream, bool enabled, int64_t reps) {
  telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();
  RunResult best;
  for (int64_t rep = 0; rep < reps; ++rep) {
    reg.Reset();
    reg.set_enabled(enabled);  // before Create: instruments cache here
    auto built = GretaEngine::Create(catalog, spec, EngineOptions{});
    GRETA_CHECK(built.ok());
    RunResult r = RunStream(built.value().get(), stream);
    if (rep == 0 || r.throughput_eps > best.throughput_eps) best = r;
  }
  reg.set_enabled(true);
  return best;
}

int Run(const Flags& flags) {
  int64_t rate = flags.GetInt("rate", 800);
  Ts duration = flags.GetInt("duration", 60);
  int64_t reps = flags.GetInt("reps", 5);
  bool sharded = flags.GetBool("sharded", true);
  bool serve = flags.GetBool("serve", true);
  std::string snapshot_path = flags.GetString("snapshot", "");

  PrintHeader(
      "Telemetry overhead: armed instruments vs runtime-disabled",
      "One hot-path Kleene query on the stock stream, best-of-" +
          std::to_string(reps) +
          " per mode; then a sharded adaptive workload to populate the "
          "runtime/sharing series.",
      "telemetry_on within 2% of telemetry_off (sharded relaxed counters, "
      "null-checked call sites).");

#if !GRETA_TELEMETRY
  std::printf("telemetry is compiled out (GRETA_TELEMETRY=0); the on/off "
              "comparison is meaningless in this build\n");
#endif

  Catalog catalog;
  StockConfig stock;
  stock.rate = static_cast<int>(rate);
  stock.duration = duration;
  Stream stream = GenerateStockStream(&catalog, stock);
  QuerySpec spec = HotpathQuery(&catalog);

  RunResult off = MeasureHotpath(&catalog, spec, stream, false, reps);
  RunResult on = MeasureHotpath(&catalog, spec, stream, true, reps);
  const double overhead_pct =
      off.throughput_eps > 0.0
          ? (off.throughput_eps - on.throughput_eps) / off.throughput_eps *
                100.0
          : 0.0;

  Table table({"config", "events/s", "peak memory", "rows"});
  table.AddRow({"telemetry_off", off.ThroughputCell(), off.MemoryCell(),
                FormatCount(static_cast<double>(off.rows_emitted))});
  table.AddRow({"telemetry_on", on.ThroughputCell(), on.MemoryCell(),
                FormatCount(static_cast<double>(on.rows_emitted))});
  std::printf(
      "{\"bench\":\"telemetry\",\"config\":\"telemetry_off\",\"events\":%zu,"
      "\"events_per_sec\":%.1f,\"peak_bytes\":%zu,\"rows\":%zu}\n",
      stream.size(), off.throughput_eps, off.peak_memory_bytes,
      off.rows_emitted);
  std::printf(
      "{\"bench\":\"telemetry\",\"config\":\"telemetry_on\",\"events\":%zu,"
      "\"events_per_sec\":%.1f,\"peak_bytes\":%zu,\"rows\":%zu}\n",
      stream.size(), on.throughput_eps, on.peak_memory_bytes,
      on.rows_emitted);
  // No events_per_sec on purpose: perf_smoke ignores this summary row.
  std::printf(
      "{\"bench\":\"telemetry\",\"config\":\"overhead\",\"overhead_pct\":"
      "%.2f}\n",
      overhead_pct);

  if (sharded || serve) {
    telemetry::MetricRegistry& reg = telemetry::MetricRegistry::Default();

    Catalog shared_catalog;
    RegisterStockTypes(&shared_catalog);
    StockConfig bursty;
    bursty.seed = 97;
    bursty.num_companies = 5;
    bursty.num_sectors = 2;
    bursty.rate = 8;
    bursty.duration = 60;
    bursty.drift = 0.0;
    bursty.bursts.push_back({20, 40, 40.0, 1.0});
    Stream bursty_stream = GenerateStockStream(&shared_catalog, bursty);

    runtime::ShardedOptions options;
    options.num_shards = 2;
    options.batch_size = 32;
    options.heartbeat_events = 64;
    options.workload.adaptive.enabled = true;
    options.workload.adaptive.observation_windows = 3;
    options.workload.adaptive.min_windows_between_migrations = 4;
    options.workload.adaptive.hysteresis = 1.2;
    std::vector<QuerySpec> workload = AdaptiveWorkload(&shared_catalog);

    if (sharded) {
      reg.Reset();
      reg.set_enabled(true);
      auto rt = runtime::ShardedRuntime::Create(&shared_catalog, workload,
                                                options);
      GRETA_CHECK(rt.ok());
      RunResult r = RunStream(rt.value().get(), bursty_stream);
      table.AddRow({"sharded_adaptive", r.ThroughputCell(), r.MemoryCell(),
                    FormatCount(static_cast<double>(r.rows_emitted))});
      std::printf(
          "{\"bench\":\"telemetry\",\"config\":\"sharded_adaptive\","
          "\"events\":%zu,\"events_per_sec\":%.1f,\"peak_bytes\":%zu,"
          "\"rows\":%zu,\"migrations\":%zu}\n",
          bursty_stream.size(), r.throughput_eps, r.peak_memory_bytes,
          r.rows_emitted, rt.value()->TotalMigrations());

      if (!snapshot_path.empty()) {
        std::string json =
            telemetry::ExportJson(reg, /*include_trace=*/true);
        std::FILE* f = std::fopen(snapshot_path.c_str(), "wb");
        if (f != nullptr) {
          std::fwrite(json.data(), 1, json.size(), f);
          std::fwrite("\n", 1, 1, f);
          std::fclose(f);
          std::printf("snapshot written to %s (%zu bytes)\n",
                      snapshot_path.c_str(), json.size());
        } else {
          std::printf("cannot open snapshot path %s\n",
                      snapshot_path.c_str());
        }
      }
      std::printf("\n%s", telemetry::ExplainTelemetry(reg).c_str());
    }

    if (serve) {
      // Same workload, endpoint up, scraper thread hammering the routes
      // for the whole replay — scrapes must ride on snapshots/atomics
      // only, so throughput should match "sharded_adaptive" within noise.
      reg.Reset();
      reg.set_enabled(true);
      auto rt = runtime::ShardedRuntime::Create(&shared_catalog, workload,
                                                options);
      GRETA_CHECK(rt.ok());
      telemetry::HttpServer server(reg);
      runtime::AttachRuntimeObservability(&server, rt.value().get());
      GRETA_CHECK(server.Start(0));
      std::atomic<bool> stop{false};
      std::atomic<size_t> scrapes{0};
      std::thread scraper([&] {
        const char* paths[] = {"/metrics", "/healthz", "/queries"};
        size_t i = 0;
        while (!stop.load(std::memory_order_acquire)) {
          int status = 0;
          std::string body;
          if (telemetry::HttpGet(server.port(), paths[i % 3], &status,
                                 &body)) {
            scrapes.fetch_add(1, std::memory_order_relaxed);
          }
          ++i;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      });
      RunResult r = RunStream(rt.value().get(), bursty_stream);
      stop.store(true, std::memory_order_release);
      scraper.join();
      server.Stop();
      table.AddRow({"telemetry_serving", r.ThroughputCell(), r.MemoryCell(),
                    FormatCount(static_cast<double>(r.rows_emitted))});
      std::printf(
          "{\"bench\":\"telemetry\",\"config\":\"telemetry_serving\","
          "\"events\":%zu,\"events_per_sec\":%.1f,\"peak_bytes\":%zu,"
          "\"rows\":%zu,\"scrapes\":%zu}\n",
          bursty_stream.size(), r.throughput_eps, r.peak_memory_bytes,
          r.rows_emitted, scrapes.load());
    }
  }

  std::printf("\n");
  table.Print();
  std::printf("telemetry overhead: %.2f%% (target < 2%%)\n", overhead_pct);
  return 0;
}

}  // namespace
}  // namespace greta::bench

int main(int argc, char** argv) {
  return greta::bench::Run(greta::bench::Flags(argc, argv));
}
