#!/usr/bin/env python3
"""Folds google-benchmark JSON output into the repo's one-object-per-line
bench row shape (items_per_second -> events_per_sec) so perf_smoke.py can
diff micro-benchmarks and the hot-path grid uniformly."""

import json
import sys


def main():
    if len(sys.argv) != 2:
        print("usage: micro_to_rows.py <benchmark.json>", file=sys.stderr)
        return 1
    try:
        with open(sys.argv[1]) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print("::warning::perf-smoke: no micro results (%s)" % e,
              file=sys.stderr)
        return 0
    for bench in data.get("benchmarks", []):
        ips = bench.get("items_per_second")
        if ips:
            print(json.dumps({"bench": "micro", "config": bench["name"],
                              "events_per_sec": ips}))
    return 0


if __name__ == "__main__":
    sys.exit(main())
