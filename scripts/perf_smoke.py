#!/usr/bin/env python3
"""Perf-smoke comparison for CI.

Compares the current run's benchmark JSON lines against a committed
baseline and prints a GitHub-Actions warning for every configuration whose
throughput dropped more than the threshold. By default it never fails the
build: CI runners are noisy and the baseline was recorded on different
hardware, so the report is a trend signal, not a gate. Pass --strict to
turn regressions beyond the threshold into a non-zero exit status (for
release branches or a dedicated perf runner with a trusted baseline).

Inputs are files of JSON objects, one per line:
  {"bench": "hotpath", "config": "count_modular", "events_per_sec": ...}
  {"bench": "micro", "config": "BM_GretaProcessEvent", "events_per_sec": ...}
Rows without an events_per_sec field (summary rows like the telemetry
bench's overhead line) are ignored.

Besides the baseline diff, every `X` / `X_nosimd` configuration pair found
in the *current* run is compared directly: both rows come from the same
process on the same runner, so the ratio is real signal even where the
cross-machine baseline is not. A pair where the SIMD side is slower than
its forced-scalar twin by more than --simd-threshold is reported (and
fails the build under --strict).

Usage:
  perf_smoke.py --baseline bench/baselines/BENCH_batch_baseline.json \
                --current BENCH_batch.json [--threshold 0.30] \
                [--simd-threshold 0.25] [--strict]
"""

import argparse
import json
import sys


def load_rows(path):
    rows = {}
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line.startswith("{"):
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(obj, dict):
                    continue  # a bare JSON array/number is not a bench row
                key = "%s/%s" % (obj.get("bench", "?"), obj.get("config", "?"))
                try:
                    eps = float(obj.get("events_per_sec"))
                except (TypeError, ValueError):
                    continue  # summary rows carry no events_per_sec
                if eps > 0:
                    rows[key] = eps
    except OSError as e:
        print("::warning::perf-smoke: cannot read %s: %s" % (path, e))
    return rows


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.30)
    parser.add_argument("--simd-threshold", type=float, default=0.25,
                        help="maximum tolerated slowdown of a config against "
                             "its _nosimd twin from the same run")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when any configuration regresses "
                             "beyond the threshold (default: report-only)")
    args = parser.parse_args()

    baseline = load_rows(args.baseline)
    current = load_rows(args.current)
    if not baseline or not current:
        print("perf-smoke: missing data (baseline=%d rows, current=%d rows);"
              " skipping" % (len(baseline), len(current)))
        return 0

    regressions = 0
    for key, base_eps in sorted(baseline.items()):
        cur_eps = current.get(key)
        if cur_eps is None:
            print("::warning::perf-smoke: %s missing from current run" % key)
            continue
        ratio = cur_eps / base_eps if base_eps > 0 else float("inf")
        line = "perf-smoke: %-28s baseline %12.0f ev/s, current %12.0f ev/s" \
               " (%.2fx)" % (key, base_eps, cur_eps, ratio)
        if ratio < 1.0 - args.threshold:
            regressions += 1
            print("::warning::%s -- regression beyond %.0f%%"
                  % (line, args.threshold * 100))
        else:
            print(line)

    for key in sorted(set(current) - set(baseline)):
        print("perf-smoke: %s is new (no baseline); %.0f ev/s"
              % (key, current[key]))

    # Same-run SIMD ablation pairs: `X_nosimd` forces the scalar kernel
    # twins on the identical batch path, so X / X_nosimd isolates the
    # vector kernels without any cross-machine noise.
    for key in sorted(current):
        if not key.endswith("_nosimd"):
            continue
        simd_key = key[: -len("_nosimd")]
        simd_eps = current.get(simd_key)
        if simd_eps is None:
            continue
        ratio = simd_eps / current[key] if current[key] > 0 else float("inf")
        line = ("perf-smoke: %-28s simd %12.0f ev/s vs scalar kernels "
                "%12.0f ev/s (%.2fx)" % (simd_key, simd_eps, current[key],
                                         ratio))
        if ratio < 1.0 - args.simd_threshold:
            regressions += 1
            print("::warning::%s -- simd slower than its scalar twin beyond "
                  "%.0f%%" % (line, args.simd_threshold * 100))
        else:
            print(line)

    print("perf-smoke: %d regression(s) beyond threshold (%s)"
          % (regressions, "strict" if args.strict else "report-only"))
    if args.strict and regressions > 0:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
