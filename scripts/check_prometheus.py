#!/usr/bin/env python3
"""Validates a Prometheus text-exposition scrape (the /metrics body).

Stdlib-only checker used by the CI observability smoke job: every
non-comment line must parse as `name[{labels}] value`, every series must
be preceded by a `# TYPE` declaration, histogram bucket counts must be
cumulative and agree with their `_count` series, and label values must not
contain unescaped quotes or raw newlines (the exporter escapes them).

Usage:
  check_prometheus.py metrics.txt [--require greta_runtime_e2e_latency_ns]
Exits non-zero with a line-numbered diagnostic on the first violation.
"""

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name{labels} value  -- labels block is matched non-greedily and validated
# separately so escaped quotes inside values don't confuse the split.
SAMPLE_RE = re.compile(r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
                       r"(?P<labels>\{.*\})?\s+(?P<value>\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def fail(lineno, msg):
    print("check_prometheus: line %d: %s" % (lineno, msg))
    return 1


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("path")
    parser.add_argument("--require", action="append", default=[],
                        help="metric family that must be present")
    args = parser.parse_args()

    with open(args.path, "rb") as f:
        raw = f.read()
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as e:
        print("check_prometheus: not UTF-8: %s" % e)
        return 1

    declared = set()   # families with a # TYPE line
    families = set()   # families seen as samples (suffixes stripped)
    buckets = {}       # series labels-sans-le -> cumulative check state
    counts = {}        # histogram family+labels -> _count value

    for lineno, line in enumerate(text.split("\n"), start=1):
        if line == "":
            continue
        if line.startswith("#"):
            m = re.match(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) "
                         r"(counter|gauge|histogram|summary|untyped)$", line)
            if m is None:
                return fail(lineno, "malformed comment: %r" % line)
            declared.add(m.group(1))
            continue
        m = SAMPLE_RE.match(line)
        if m is None:
            return fail(lineno, "unparseable sample: %r" % line)
        name, labels, value = m.group("name", "labels", "value")
        try:
            val = float(value)
        except ValueError:
            return fail(lineno, "non-numeric value %r" % value)
        if labels is not None:
            inner = labels[1:-1]
            consumed = LABEL_RE.sub("", inner)
            if consumed.strip(", ") != "":
                return fail(lineno, "malformed label block %r" % labels)

        family = re.sub(r"_(bucket|sum|count)$", "", name)
        families.add(family)
        base_declared = (name in declared or family in declared)
        if not base_declared:
            return fail(lineno, "series %r has no # TYPE declaration" % name)

        if name.endswith("_bucket"):
            # Normalize the series key to match the _count line's labels:
            # drop the le pair, then any empty or trailing-comma braces.
            series = re.sub(r'le="[^"]*",?', "", labels or "")
            series = series.replace(",}", "}")
            if series == "{}":
                series = ""
            key = (family, series)
            prev = buckets.get(key, -1.0)
            if val < prev:
                return fail(lineno,
                            "bucket counts not cumulative for %s" % name)
            buckets[key] = val
        elif name.endswith("_count"):
            counts[(family, labels or "")] = (lineno, val)

    for (family, series), cum in buckets.items():
        entry = counts.get((family, series))
        if entry is None:
            print("check_prometheus: histogram %s%s has buckets but no "
                  "_count" % (family, series))
            return 1
        lineno, total = entry
        if cum != total:
            return fail(lineno, "histogram %s: +Inf bucket %g != _count %g"
                        % (family, cum, total))

    missing = [r for r in args.require if r not in families]
    if missing:
        print("check_prometheus: required families missing: %s"
              % ", ".join(missing))
        return 1

    print("check_prometheus: OK (%d families, %d histogram series)"
          % (len(families), len(buckets)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
